#include "core/yardsticks.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/async_query.h"
#include "util/check.h"

namespace delta::core {

// ---------------------------------------------------------------- NoCache

NoCachePolicy::NoCachePolicy(CacheNode* system) : system_(system) {
  DELTA_CHECK(system != nullptr);
  system_->set_subscription(MetadataSubscription::kNone);
}

void NoCachePolicy::on_update(const workload::Update&) {
  // Without a cache there is nothing to keep current.
}

QueryOutcome NoCachePolicy::on_query(const workload::Query& q) {
  QueryOutcome outcome;
  outcome.path = QueryOutcome::Path::kShipped;
  outcome.result_bytes = system_->ship_query(q);
  return outcome;
}

void NoCachePolicy::on_query_async(const workload::Query& q,
                                   QueryDone done) {
  const auto ctx = begin_async_query(std::move(done));
  ctx->outcome.path = QueryOutcome::Path::kShipped;
  AsyncQueryTx{system_, ctx}.ship_query(q, ctx->outcome);
  async_query_step(ctx);  // release the dispatch barrier
}

// ---------------------------------------------------------------- Replica

ReplicaPolicy::ReplicaPolicy(CacheNode* system) : system_(system) {
  DELTA_CHECK(system != nullptr);
  system_->set_subscription(MetadataSubscription::kAll);
  system_->set_invalidation_handler(
      [this](const workload::Update& u) { on_update(u); });
}

void ReplicaPolicy::on_update(const workload::Update& u) {
  // Full replica: every update is propagated as soon as it arrives. Open
  // loop, the refresh goes out fire-and-forget so one slow (or dark) link
  // can never park the arrival drive behind a blocking round trip.
  if (async_ship_) {
    system_->ship_update_async(u, [](Bytes) {});
    return;
  }
  system_->ship_update(u);
}

QueryOutcome ReplicaPolicy::on_query(const workload::Query&) {
  QueryOutcome outcome;
  outcome.path = QueryOutcome::Path::kCacheFresh;
  return outcome;
}

// --------------------------------------------------------------- SOptimal

namespace {

/// Whether query index `qi` is routed to the endpoint choosing the set.
bool routed_here(const SOptimalOptions& options, std::size_t qi) {
  return options.query_assignment == nullptr ||
         (*options.query_assignment)[qi] == options.endpoint;
}

struct HindsightStats {
  std::vector<double> saved;       // proportional query savings
  std::vector<double> update_cost; // total ν(u) per object
  std::vector<Bytes> final_size;   // initial size + all update growth
};

HindsightStats hindsight(const workload::Trace& trace,
                         const SOptimalOptions& options) {
  const std::size_t n = trace.initial_object_bytes.size();
  HindsightStats s;
  s.saved.assign(n, 0.0);
  s.update_cost.assign(n, 0.0);
  s.final_size = trace.initial_object_bytes;
  for (const workload::Update& u : trace.updates) {
    const auto i = static_cast<std::size_t>(u.object.value());
    s.update_cost[i] += u.cost.as_double();
    s.final_size[i] += u.cost;
  }
  for (std::size_t qi = 0; qi < trace.queries.size(); ++qi) {
    if (!routed_here(options, qi)) continue;
    const workload::Query& q = trace.queries[qi];
    double size_sum = 0.0;
    for (const ObjectId o : q.objects) {
      size_sum +=
          trace.initial_object_bytes[static_cast<std::size_t>(o.value())]
              .as_double();
    }
    if (size_sum <= 0.0) continue;
    for (const ObjectId o : q.objects) {
      const auto i = static_cast<std::size_t>(o.value());
      s.saved[i] += q.cost.as_double() *
                    trace.initial_object_bytes[i].as_double() / size_sum;
    }
  }
  return s;
}

/// Exact replay cost of a static set: shipped queries + updates on the set
/// + up-front loads. Used by the local-search refinement (ablation A5).
class StaticSetEvaluator {
 public:
  StaticSetEvaluator(const workload::Trace& trace,
                     const std::vector<Bytes>& load_costs,
                     const SOptimalOptions& options)
      : trace_(&trace), load_costs_(&load_costs) {
    const std::size_t n = trace.initial_object_bytes.size();
    object_queries_.resize(n);
    missing_.assign(trace.queries.size(), 0);
    update_cost_.assign(n, 0.0);
    for (std::size_t qi = 0; qi < trace.queries.size(); ++qi) {
      if (!routed_here(options, qi)) continue;  // another endpoint's query
      for (const ObjectId o : trace.queries[qi].objects) {
        object_queries_[static_cast<std::size_t>(o.value())].push_back(qi);
      }
      missing_[qi] =
          static_cast<std::int32_t>(trace.queries[qi].objects.size());
      cost_ += trace.queries[qi].cost.as_double();
    }
    for (const workload::Update& u : trace.updates) {
      update_cost_[static_cast<std::size_t>(u.object.value())] +=
          u.cost.as_double();
    }
    in_set_.assign(n, false);
  }

  [[nodiscard]] double cost() const { return cost_; }
  [[nodiscard]] bool contains(std::size_t o) const { return in_set_[o]; }

  void add(std::size_t o) {
    DELTA_CHECK(!in_set_[o]);
    in_set_[o] = true;
    cost_ += (*load_costs_)[o].as_double() + update_cost_[o];
    for (const std::size_t qi : object_queries_[o]) {
      if (--missing_[qi] == 0) {
        cost_ -= trace_->queries[qi].cost.as_double();
      }
    }
  }

  void remove(std::size_t o) {
    DELTA_CHECK(in_set_[o]);
    in_set_[o] = false;
    cost_ -= (*load_costs_)[o].as_double() + update_cost_[o];
    for (const std::size_t qi : object_queries_[o]) {
      if (missing_[qi]++ == 0) {
        cost_ += trace_->queries[qi].cost.as_double();
      }
    }
  }

 private:
  const workload::Trace* trace_;
  const std::vector<Bytes>* load_costs_;
  std::vector<std::vector<std::size_t>> object_queries_;
  std::vector<std::int32_t> missing_;
  std::vector<double> update_cost_;
  std::vector<bool> in_set_;
  double cost_ = 0.0;
};

}  // namespace

util::FlatSet<ObjectId> SOptimalPolicy::choose_set(
    const workload::Trace& trace, const SOptimalOptions& options) {
  DELTA_CHECK(options.query_assignment == nullptr ||
              options.query_assignment->size() == trace.queries.size());
  const std::size_t n = trace.initial_object_bytes.size();
  const HindsightStats stats = hindsight(trace, options);
  std::vector<Bytes> load_costs(n);
  std::vector<double> net(n);
  for (std::size_t i = 0; i < n; ++i) {
    load_costs[i] =
        trace.initial_object_bytes[i] + ServerNode::kLoadOverheadBytes;
    net[i] = stats.saved[i] - stats.update_cost[i] -
             load_costs[i].as_double();
  }
  std::vector<std::size_t> ranked(n);
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return net[a] > net[b];
                   });

  // Greedy fill by final sizes (the set must fit even after growth; the
  // static yardstick never evicts).
  util::FlatSet<ObjectId> chosen;
  std::vector<bool> selected(n, false);
  Bytes budget = options.cache_capacity;
  for (const std::size_t i : ranked) {
    if (net[i] <= 0.0) break;
    if (trace.initial_object_bytes[i].count() <= 0) continue;
    if (stats.final_size[i] > budget) continue;
    selected[i] = true;
    chosen.insert(ObjectId{static_cast<std::int64_t>(i)});
    budget -= stats.final_size[i];
  }
  if (!options.local_search) return chosen;

  // Ablation A5: add/drop hill-climbing against the exact replay cost.
  StaticSetEvaluator eval{trace, load_costs, options};
  for (std::size_t i = 0; i < n; ++i) {
    if (selected[i]) eval.add(i);
  }
  for (int pass = 0; pass < 30; ++pass) {
    bool improved = false;
    for (const std::size_t i : ranked) {
      if (trace.initial_object_bytes[i].count() <= 0) continue;
      const double before = eval.cost();
      if (selected[i]) {
        eval.remove(i);
        if (eval.cost() + 1e-6 < before) {
          selected[i] = false;
          budget += stats.final_size[i];
          improved = true;
        } else {
          eval.add(i);
        }
      } else if (stats.final_size[i] <= budget) {
        eval.add(i);
        if (eval.cost() + 1e-6 < before) {
          selected[i] = true;
          budget -= stats.final_size[i];
          improved = true;
        } else {
          eval.remove(i);
        }
      }
    }
    if (!improved) break;
  }
  chosen.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (selected[i]) chosen.insert(ObjectId{static_cast<std::int64_t>(i)});
  }
  return chosen;
}

SOptimalPolicy::SOptimalPolicy(CacheNode* system,
                               const workload::Trace* trace,
                               const SOptimalOptions& options)
    : system_(system) {
  DELTA_CHECK(system != nullptr);
  DELTA_CHECK(trace != nullptr);
  chosen_ = choose_set(*trace, options);
  system_->set_subscription(MetadataSubscription::kRegisteredOnly);
  system_->set_invalidation_handler(
      [this](const workload::Update& u) { on_update(u); });
  // Load the static set up front — at event zero, inside the warm-up
  // window, exactly as the paper implements it. (Visit order only affects
  // the order of the load messages, never the byte totals.)
  chosen_.for_each([this](ObjectId o) { system_->load_object(o); });
}

void SOptimalPolicy::on_update(const workload::Update& u) {
  DELTA_CHECK(chosen_.count(u.object) > 0);
  system_->ship_update(u);  // keep the static set current
}

QueryOutcome SOptimalPolicy::on_query(const workload::Query& q) {
  QueryOutcome outcome;
  for (const ObjectId o : q.objects) {
    if (chosen_.count(o) == 0) {
      outcome.path = QueryOutcome::Path::kShipped;
      outcome.result_bytes = system_->ship_query(q);
      return outcome;
    }
  }
  outcome.path = QueryOutcome::Path::kCacheFresh;
  return outcome;
}

void SOptimalPolicy::on_query_async(const workload::Query& q,
                                    QueryDone done) {
  const auto ctx = begin_async_query(std::move(done));
  ctx->outcome.path = QueryOutcome::Path::kCacheFresh;
  for (const ObjectId o : q.objects) {
    if (chosen_.count(o) == 0) {
      ctx->outcome.path = QueryOutcome::Path::kShipped;
      AsyncQueryTx{system_, ctx}.ship_query(q, ctx->outcome);
      break;
    }
  }
  async_query_step(ctx);  // release the dispatch barrier
}

}  // namespace delta::core
