// LoadManager (paper Fig. 6): decides, in the background of a shipped
// query, whether loading the query's missing objects would pay off.
//
// The bypass-caching rule (Malik et al., ICDE'05) says: keep shipping
// queries for an object until the shipped cost reaches the object's load
// cost, then load. The paper implements the rule *without per-object
// counters* by randomized attribution: the query's cost ν(q) is walked over
// its missing objects in random order; an object whose load cost fits
// entirely in the remaining budget becomes a candidate outright, otherwise
// it becomes one with probability c/l(o) — so in expectation an object is
// proposed exactly once per l(o) bytes of shipped-query demand.
// Candidates are then admitted/evicted by the lazy object-caching policy.
//
// A counter-based exact variant is provided for ablation A3.
#pragma once

#include <memory>
#include <vector>

#include "cache/eviction_policy.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/types.h"
#include "workload/events.h"

namespace delta::core {

class LoadManager {
 public:
  struct Options {
    /// Exact per-object counters (default) vs the paper's randomized
    /// attribution. Both implement the bypass rule; the randomized variant
    /// saves per-object counter state but only matches the rule in
    /// expectation — on workloads with many objects whose total demand is
    /// close to their load cost it adds variance-driven load traffic
    /// (quantified in ablation A3).
    bool randomized = false;
    /// Lazy batch admission (paper) vs eager per-candidate admission.
    bool lazy = true;
  };

  LoadManager(Options options, util::Rng rng)
      : options_(options), rng_(rng) {}

  /// Runs the attribution walk over the query's missing objects (shuffled
  /// in place) and returns the proposed load candidates. In lazy mode the
  /// caller hands the whole batch to the eviction policy at once; in eager
  /// mode it applies each candidate as its own single-element batch. The
  /// returned reference points at reused scratch, valid until the next
  /// consider() call (keeps the per-query replay path allocation-free).
  template <typename SizeFn, typename CostFn>
  const std::vector<cache::LoadCandidate>& consider(
      const workload::Query& q, std::vector<ObjectId>& missing,
      SizeFn&& size_of, CostFn&& load_cost_of) {
    std::vector<cache::LoadCandidate>& candidates = candidates_;
    candidates.clear();
    rng_.shuffle(missing);
    double budget = q.cost.as_double();
    for (const ObjectId o : missing) {
      if (budget <= 0.0) break;
      const Bytes load_cost = load_cost_of(o);
      const double l = load_cost.as_double();
      bool propose = false;
      if (options_.randomized) {
        if (budget >= l) {
          propose = true;
          budget -= l;
        } else {
          propose = rng_.bernoulli(budget / l);
          budget = 0.0;
        }
      } else {
        // Exact counters: accumulate the attributed share; propose once the
        // accumulated shipped cost covers the load cost.
        const double share = std::min(budget, l);
        budget -= share;
        double& counter = counters_[o];
        counter += share;
        if (counter >= l) {
          propose = true;
          counter = 0.0;
        }
      }
      if (propose) {
        candidates.push_back(cache::LoadCandidate{o, size_of(o), load_cost});
      }
    }
    return candidates;
  }

  [[nodiscard]] const Options& options() const { return options_; }

  /// Counter-mode bookkeeping dropped when an object is loaded or evicted.
  void forget(ObjectId o) { counters_.erase(o); }

  /// Crash-stop wipe (ISSUE 10): the partial-attribution counters are
  /// in-memory soft state and die with the process. The RNG keeps its
  /// stream (randomized mode draws stay a deterministic function of the
  /// pre-crash draw count — the crash does not reseed the experiment).
  void clear() { counters_.clear(); }

  /// Pre-sizes the counter table (counter mode tracks objects with partial
  /// attribution — bounded by the queried-object footprint, not residency).
  void reserve(std::size_t n) { counters_.reserve(n); }

 private:
  Options options_;
  util::Rng rng_;
  util::FlatMap<ObjectId, double> counters_;  // counter mode only
  std::vector<cache::LoadCandidate> candidates_;  // consider() scratch
};

}  // namespace delta::core
