// LoadManager (paper Fig. 6): decides, in the background of a shipped
// query, whether loading the query's missing objects would pay off.
//
// The bypass-caching rule (Malik et al., ICDE'05) says: keep shipping
// queries for an object until the shipped cost reaches the object's load
// cost, then load. The paper implements the rule *without per-object
// counters* by randomized attribution: the query's cost ν(q) is walked over
// its missing objects in random order; an object whose load cost fits
// entirely in the remaining budget becomes a candidate outright, otherwise
// it becomes one with probability c/l(o) — so in expectation an object is
// proposed exactly once per l(o) bytes of shipped-query demand.
// Candidates are then admitted/evicted by the lazy object-caching policy.
//
// A counter-based exact variant is provided for ablation A3.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/eviction_policy.h"
#include "util/rng.h"
#include "util/types.h"
#include "workload/events.h"

namespace delta::core {

class LoadManager {
 public:
  struct Options {
    /// Exact per-object counters (default) vs the paper's randomized
    /// attribution. Both implement the bypass rule; the randomized variant
    /// saves per-object counter state but only matches the rule in
    /// expectation — on workloads with many objects whose total demand is
    /// close to their load cost it adds variance-driven load traffic
    /// (quantified in ablation A3).
    bool randomized = false;
    /// Lazy batch admission (paper) vs eager per-candidate admission.
    bool lazy = true;
  };

  LoadManager(Options options, util::Rng rng)
      : options_(options), rng_(rng) {}

  struct Proposal {
    /// Candidate batches to hand to the eviction policy: one batch in lazy
    /// mode, one per candidate in eager mode.
    std::vector<std::vector<cache::LoadCandidate>> batches;
  };

  /// Runs the attribution walk over the query's missing objects and
  /// returns the candidate batches. The caller applies each batch through
  /// the eviction policy and performs the actual loads/evictions.
  template <typename SizeFn, typename CostFn>
  Proposal consider(const workload::Query& q,
                    std::vector<ObjectId> missing, SizeFn&& size_of,
                    CostFn&& load_cost_of) {
    Proposal proposal;
    std::vector<cache::LoadCandidate> candidates;
    rng_.shuffle(missing);
    double budget = q.cost.as_double();
    for (const ObjectId o : missing) {
      if (budget <= 0.0) break;
      const Bytes load_cost = load_cost_of(o);
      const double l = load_cost.as_double();
      bool propose = false;
      if (options_.randomized) {
        if (budget >= l) {
          propose = true;
          budget -= l;
        } else {
          propose = rng_.bernoulli(budget / l);
          budget = 0.0;
        }
      } else {
        // Exact counters: accumulate the attributed share; propose once the
        // accumulated shipped cost covers the load cost.
        const double share = std::min(budget, l);
        budget -= share;
        double& counter = counters_[o];
        counter += share;
        if (counter >= l) {
          propose = true;
          counter = 0.0;
        }
      }
      if (propose) {
        candidates.push_back(cache::LoadCandidate{o, size_of(o), load_cost});
      }
    }
    if (candidates.empty()) return proposal;
    if (options_.lazy) {
      proposal.batches.push_back(std::move(candidates));
    } else {
      for (const auto& c : candidates) {
        proposal.batches.push_back({c});
      }
    }
    return proposal;
  }

  [[nodiscard]] const Options& options() const { return options_; }

  /// Counter-mode bookkeeping dropped when an object is loaded or evicted.
  void forget(ObjectId o) { counters_.erase(o); }

 private:
  Options options_;
  util::Rng rng_;
  std::unordered_map<ObjectId, double> counters_;  // counter mode only
};

}  // namespace delta::core
