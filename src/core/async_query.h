// Shared completion-correlation context for the policies' on_query_async
// implementations.
//
// A policy dispatching one query may issue several overlapping requests
// (update ships, the query ship, object loads). Each request parks a
// completion against the in-flight context; the query's QueryDone fires
// when the last of them lands. The context starts with one artificial
// reference — the dispatch barrier — released by the policy after it has
// issued everything, so a completion that happens to be delivered inline
// (synchronous transport, or the DelayedTransport fast path) cannot fire
// QueryDone while later requests of the same query are still unsent.
#pragma once

#include <memory>
#include <utility>

#include "core/cache_node.h"
#include "core/policy.h"
#include "util/check.h"

namespace delta::core {

struct AsyncQueryContext {
  QueryOutcome outcome;
  CachePolicy::QueryDone done;
  /// Outstanding completions + the dispatch barrier.
  int remaining = 1;
};

inline std::shared_ptr<AsyncQueryContext> begin_async_query(
    CachePolicy::QueryDone done) {
  auto ctx = std::make_shared<AsyncQueryContext>();
  ctx->done = std::move(done);
  return ctx;
}

/// Releases one reference; the last release fires QueryDone.
inline void async_query_step(const std::shared_ptr<AsyncQueryContext>& ctx) {
  DELTA_DCHECK(ctx->remaining > 0);
  if (--ctx->remaining == 0) ctx->done(ctx->outcome);
}

/// Transmitter issuing a policy's per-query traffic through the CacheNode
/// non-blocking API, correlated on one AsyncQueryContext. Mirrors the sync
/// transmitter the policies use from on_query (see e.g. SyncQueryTx in
/// vcover_policy.cpp); the dispatch logic is shared, only the transmitter
/// differs.
struct AsyncQueryTx {
  CacheNode* cache;
  std::shared_ptr<AsyncQueryContext> ctx;

  void ship_update(const workload::Update& u) {
    ++ctx->remaining;
    cache->ship_update_async(
        u, [c = ctx](Bytes) { async_query_step(c); });
  }
  void ship_query(const workload::Query& q, QueryOutcome&) {
    ++ctx->remaining;
    cache->ship_query_async(q, [c = ctx](Bytes result) {
      c->outcome.result_bytes = result;
      async_query_step(c);
    });
  }
  void load_object(ObjectId o) {
    ++ctx->remaining;
    cache->load_object_async(o, [c = ctx](Bytes) { async_query_step(c); });
  }
};

}  // namespace delta::core
