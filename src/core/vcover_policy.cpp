#include "core/vcover_policy.h"

#include <algorithm>
#include <utility>

#include "cache/gds.h"
#include "cache/lru.h"
#include "core/async_query.h"
#include "util/check.h"

namespace delta::core {

namespace {

/// Synchronous transmitter: each emission is a blocking round trip (the
/// CacheNode façade pumps the event queue until the reply lands). This is
/// the closed-loop golden path — message order and timing are exactly the
/// pre-async behavior. AsyncQueryTx (core/async_query.h) is the
/// overlapping counterpart.
struct SyncQueryTx {
  CacheNode* cache;
  void ship_update(const workload::Update& u) { cache->ship_update(u); }
  void ship_query(const workload::Query& q, QueryOutcome& outcome) {
    outcome.result_bytes = cache->ship_query(q);
  }
  void load_object(ObjectId o) { cache->load_object(o); }
};

}  // namespace

VCoverPolicy::VCoverPolicy(CacheNode* system, const VCoverOptions& options)
    : system_(system),
      options_(options),
      store_(options.cache_capacity),
      update_manager_(options.remember_shipped_queries),
      load_manager_(options.loading, util::Rng{options.rng_seed}) {
  DELTA_CHECK(system != nullptr);
  if (options_.use_lru) {
    evictor_ = std::make_unique<cache::LruPolicy>(&store_);
  } else {
    evictor_ = std::make_unique<cache::GreedyDualSize>(&store_);
  }
  if (options_.expected_resident_objects > 0) {
    const std::size_t n = options_.expected_resident_objects;
    store_.reserve(n);
    evictor_->reserve(n);
    update_manager_.reserve(n);
    load_manager_.reserve(n);
    heat_.reserve(n);
  }
  system_->set_subscription(MetadataSubscription::kRegisteredOnly);
  system_->set_invalidation_handler(
      [this](const workload::Update& u) { on_update(u); });
}

void VCoverPolicy::on_crash_restart() {
  store_.clear();
  // The evictor's priority state (GDS inflation value L, LRU clocks) is
  // in-memory; a restarted process starts from a fresh instance.
  if (options_.use_lru) {
    evictor_ = std::make_unique<cache::LruPolicy>(&store_);
  } else {
    evictor_ = std::make_unique<cache::GreedyDualSize>(&store_);
  }
  if (options_.expected_resident_objects > 0) {
    evictor_->reserve(options_.expected_resident_objects);
  }
  update_manager_.clear();
  load_manager_.clear();
  heat_.clear();
  missing_.clear();
  eager_batch_.clear();
}

void VCoverPolicy::on_update(const workload::Update& u) {
  // Invalidations arrive only for registered (resident) objects — except
  // that over an event-driven transport our eviction notice may still be
  // in flight when the server fanned this notice out. That race is a
  // legitimately stale notice (the server stops notifying once the
  // eviction lands), so drop it; with inline delivery it cannot happen
  // and stays an invariant violation.
  if (!store_.contains(u.object)) {
    DELTA_CHECK_MSG(!system_->transport_synchronous(),
                    "invalidation for non-resident object");
    return;
  }
  if (options_.preship) {
    const double* heat = heat_.find(u.object);
    if (heat != nullptr && *heat >= options_.preship_heat_threshold) {
      // Hot object: push the content proactively so the next
      // currency-constrained query needn't wait.
      system_->ship_update(u);
      store_.grow(u.object, u.cost);
      ++preshipped_;
      shed_overflow();
      return;
    }
  }
  update_manager_.add_outstanding(u);
  store_.mark_stale(u.object);
}

void VCoverPolicy::evict_object(ObjectId o) {
  churn_log_.push_back({now_, o, store_.bytes_of(o), false});
  store_.evict(o);
  update_manager_.drop_object(o);
  load_manager_.forget(o);
  heat_.erase(o);
  system_->notify_eviction(o);
  ++evictions_;
}

void VCoverPolicy::shed_overflow() {
  if (!store_.over_capacity()) return;
  for (const ObjectId victim : evictor_->shed_overflow()) {
    evict_object(victim);
  }
  DELTA_CHECK(!store_.over_capacity());
}

template <typename Tx>
void VCoverPolicy::apply_batch(const std::vector<cache::LoadCandidate>& batch,
                               QueryOutcome& outcome, Tx&& tx) {
  const cache::BatchDecision& decision = evictor_->decide_batch(batch);
  for (const ObjectId victim : decision.evict) {
    evict_object(victim);
  }
  for (const ObjectId o : decision.load) {
    const Bytes size = system_->server_object_bytes(o);
    tx.load_object(o);     // LoadData message: size + framing
    store_.load(o, size);  // enters fresh, with all updates folded in
    churn_log_.push_back({now_, o, size, true});
    load_manager_.forget(o);
    ++loads_;
    ++outcome.objects_loaded;
  }
}

template <typename Tx>
void VCoverPolicy::dispatch_query(const workload::Query& q,
                                  QueryOutcome& outcome, Tx&& tx) {
  now_ = q.time;
  missing_.clear();
  for (const ObjectId o : q.objects) {
    if (!store_.contains(o)) missing_.push_back(o);
  }

  if (missing_.empty()) {
    if (admission_.enabled && can_degrade(q)) {
      // Overload degradation: the cached data already satisfies t(q) —
      // answer as-is instead of pushing cover traffic onto a congested
      // uplink. kCacheFresh because the answer IS within tolerance.
      outcome.path = QueryOutcome::Path::kCacheFresh;
      ++degraded_queries_;
      ++cache_answers_;
      for (const ObjectId o : q.objects) {
        evictor_->on_access(o);
      }
      return;
    }
    // All objects cached: UpdateManager chooses between shipping the query
    // and shipping its interacting updates (Fig. 4).
    const UpdateManager::Decision& decision = update_manager_.decide(q);
    for (const workload::Update* u : decision.ship_updates) {
      tx.ship_update(*u);
      store_.grow(u->object, u->cost);
      outcome.updates_shipped_bytes += u->cost;
      outcome.max_update_bytes = std::max(outcome.max_update_bytes, u->cost);
      outcome.shipped_update_ids.push_back(u->id);
      if (!update_manager_.is_stale(u->object)) {
        store_.mark_fresh(u->object);
      }
    }
    if (decision.ship_query) {
      outcome.path = QueryOutcome::Path::kShipped;
      tx.ship_query(q, outcome);
    } else {
      outcome.path = decision.ship_updates.empty()
                         ? QueryOutcome::Path::kCacheFresh
                         : QueryOutcome::Path::kCacheAfterUpdates;
      ++cache_answers_;
      for (const ObjectId o : q.objects) {
        evictor_->on_access(o);
        if (options_.preship) {
          double& h = heat_[o];
          h = h * options_.preship_heat_decay + 1.0;
        }
      }
    }
    shed_overflow();  // shipped updates may have grown past capacity
    return;
  }

  // At least one object missing: ship the query, then decide loads in the
  // background (Fig. 3 lines 6-8).
  outcome.path = QueryOutcome::Path::kShipped;
  tx.ship_query(q, outcome);
  const std::vector<cache::LoadCandidate>& candidates =
      load_manager_.consider(
          q, missing_,
          [this](ObjectId o) { return system_->server_object_bytes(o); },
          [this](ObjectId o) { return system_->load_cost(o); });
  if (!candidates.empty()) {
    if (load_manager_.options().lazy) {
      apply_batch(candidates, outcome, tx);
    } else {
      // Eager mode (ablation A3): each candidate is its own batch.
      for (const cache::LoadCandidate& c : candidates) {
        eager_batch_.assign(1, c);
        apply_batch(eager_batch_, outcome, tx);
      }
    }
  }
}

bool VCoverPolicy::can_degrade(const workload::Query& q) const {
  const bool pressure =
      system_->uplink_backlog_seconds() > admission_.degrade_backlog_seconds ||
      (admission_.degrade_in_flight > 0 &&
       static_cast<std::int64_t>(system_->pending_requests()) >=
           admission_.degrade_in_flight);
  if (!pressure) return false;
  // t(q) semantics: the answer may omit updates newer than
  // q.time - tolerance. Degrading is valid only when EVERY outstanding
  // update on the query's objects is omittable (plus configured slack).
  const EventTime horizon =
      q.time - q.staleness_tolerance - admission_.degrade_extra_tolerance;
  for (const ObjectId o : q.objects) {
    if (update_manager_.oldest_outstanding(o) <= horizon) return false;
  }
  return true;
}

QueryOutcome VCoverPolicy::on_query(const workload::Query& q) {
  QueryOutcome outcome;
  dispatch_query(q, outcome, SyncQueryTx{system_});
  return outcome;
}

void VCoverPolicy::on_query_async(const workload::Query& q, QueryDone done) {
  const auto ctx = begin_async_query(std::move(done));
  dispatch_query(q, ctx->outcome, AsyncQueryTx{system_, ctx});
  async_query_step(ctx);  // release the dispatch barrier
}

}  // namespace delta::core
