// LoadManager is header-only; this TU anchors the target.
