#include "core/benefit_policy.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/async_query.h"
#include "util/check.h"

namespace delta::core {

BenefitPolicy::BenefitPolicy(CacheNode* system,
                             const BenefitOptions& options)
    : system_(system), options_(options), store_(options.cache_capacity) {
  DELTA_CHECK(system != nullptr);
  DELTA_CHECK(options.window > 0);
  DELTA_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0);
  const std::size_t n = system->object_count();
  forecast_.assign(n, 0.0);
  saved_window_.assign(n, 0.0);
  would_window_.assign(n, 0.0);
  update_window_.assign(n, 0.0);
  // Benefit keeps per-object state server-side for every object, cached or
  // not (§5), so it subscribes to all update metadata.
  system_->set_subscription(MetadataSubscription::kAll);
  system_->set_invalidation_handler(
      [this](const workload::Update& u) { on_update(u); });
}

void BenefitPolicy::on_crash_restart() {
  store_.clear();
  std::fill(forecast_.begin(), forecast_.end(), 0.0);
  std::fill(saved_window_.begin(), saved_window_.end(), 0.0);
  std::fill(would_window_.begin(), would_window_.end(), 0.0);
  std::fill(update_window_.begin(), update_window_.end(), 0.0);
  events_in_window_ = 0;
}

void BenefitPolicy::on_update(const workload::Update& u) {
  const auto i = static_cast<std::size_t>(u.object.value());
  update_window_[i] += u.cost.as_double();
  if (store_.contains(u.object)) {
    // Cached objects are kept current eagerly.
    system_->ship_update(u);
    store_.grow(u.object, u.cost);
    evict_lowest_forecast_until_fits();
  }
  tick();
}

bool BenefitPolicy::classify_query(const workload::Query& q,
                                   QueryOutcome& outcome) {
  bool all_cached = true;
  double size_sum = 0.0;
  for (const ObjectId o : q.objects) {
    if (!store_.contains(o)) all_cached = false;
    size_sum += system_->server_object_bytes(o).as_double();
  }
  if (size_sum <= 0.0) size_sum = 1.0;

  if (all_cached) {
    outcome.path = QueryOutcome::Path::kCacheFresh;  // eager updates: fresh
    for (const ObjectId o : q.objects) {
      const auto i = static_cast<std::size_t>(o.value());
      const double share =
          q.cost.as_double() *
          system_->server_object_bytes(o).as_double() / size_sum;
      saved_window_[i] += share;
    }
    return false;
  }
  outcome.path = QueryOutcome::Path::kShipped;
  return true;
}

void BenefitPolicy::account_shipped(const workload::Query& q) {
  // Accrued after the ship is issued, like the pre-async code: a blocking
  // ship pumps deliveries whose on_update calls may close the window, and
  // the counterfactual savings must land in whichever window is then
  // current.
  double size_sum = 0.0;
  for (const ObjectId o : q.objects) {
    size_sum += system_->server_object_bytes(o).as_double();
  }
  if (size_sum <= 0.0) size_sum = 1.0;
  for (const ObjectId o : q.objects) {
    if (store_.contains(o)) continue;
    const auto i = static_cast<std::size_t>(o.value());
    const double share =
        q.cost.as_double() *
        system_->server_object_bytes(o).as_double() / size_sum;
    would_window_[i] += share;
  }
}

QueryOutcome BenefitPolicy::on_query(const workload::Query& q) {
  QueryOutcome outcome;
  if (classify_query(q, outcome)) {
    outcome.result_bytes = system_->ship_query(q);
    account_shipped(q);
  }
  tick();
  return outcome;
}

void BenefitPolicy::on_query_async(const workload::Query& q,
                                   QueryDone done) {
  const auto ctx = begin_async_query(std::move(done));
  if (classify_query(q, ctx->outcome)) {
    AsyncQueryTx{system_, ctx}.ship_query(q, ctx->outcome);
    account_shipped(q);
  }
  // The window boundary may fall here; close_window's loads/evictions use
  // the synchronous façade — a rare, bounded stall inside an otherwise
  // open-loop stream.
  tick();
  async_query_step(ctx);  // release the dispatch barrier
}

void BenefitPolicy::tick() {
  if (++events_in_window_ >= options_.window) {
    close_window();
    events_in_window_ = 0;
  }
}

void BenefitPolicy::evict_lowest_forecast_until_fits() {
  while (store_.over_capacity()) {
    // Allocation-free arg-min over the residents; the (forecast, id)
    // tie-break makes the victim independent of the store's visit order.
    ObjectId victim = ObjectId::invalid();
    double victim_mu = 0.0;
    store_.for_each_resident([&](ObjectId o, Bytes) {
      const double mu = forecast_[static_cast<std::size_t>(o.value())];
      if (!victim.valid() || mu < victim_mu ||
          (mu == victim_mu && o < victim)) {
        victim = o;
        victim_mu = mu;
      }
    });
    DELTA_CHECK(victim.valid());
    store_.evict(victim);
    system_->notify_eviction(victim);
    ++evictions_;
  }
}

void BenefitPolicy::close_window() {
  ++windows_closed_;
  const std::size_t n = forecast_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ObjectId o{static_cast<std::int64_t>(i)};
    const bool cached = store_.contains(o);
    double b = cached ? saved_window_[i]
                      : would_window_[i] -
                            system_->load_cost(o).as_double();
    b -= update_window_[i];
    forecast_[i] = (1.0 - options_.alpha) * forecast_[i] +
                   options_.alpha * b;
    saved_window_[i] = 0.0;
    would_window_[i] = 0.0;
    update_window_[i] = 0.0;
  }

  // Greedy re-fill: positive forecasts in decreasing order until full.
  std::vector<std::size_t> ranked(n);
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return forecast_[a] > forecast_[b];
                   });
  util::FlatSet<ObjectId> selected;
  Bytes budget = store_.capacity();
  for (const std::size_t i : ranked) {
    if (forecast_[i] <= 0.0) break;
    const ObjectId o{static_cast<std::int64_t>(i)};
    const Bytes size = system_->server_object_bytes(o);
    if (size.count() <= 0 || size > budget) continue;
    selected.insert(o);
    budget -= size;
  }
  // Evict residents that fell out of the selection (no network traffic).
  // Victims are collected first: the store must not be mutated while its
  // entries are being visited.
  victims_.clear();
  store_.for_each_resident([&](ObjectId o, Bytes) {
    if (selected.count(o) == 0) victims_.push_back(o);
  });
  for (const ObjectId o : victims_) {
    store_.evict(o);
    system_->notify_eviction(o);
    ++evictions_;
  }
  // Load newcomers; already-resident selections stay ("don't have to be
  // reloaded", §5). Visit order only affects message order, never totals.
  selected.for_each([this](ObjectId o) {
    if (store_.contains(o)) return;
    system_->load_object(o);
    store_.load(o, system_->server_object_bytes(o));
    ++loads_;
  });
}

}  // namespace delta::core
