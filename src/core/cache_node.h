// CacheNode: a cache client endpoint of the middleware (Figure 1).
//
// It is the surface the cache policies program against: ship a query, ship
// an update, bulk-load an object, notify an eviction — each call is a real
// request message to the ServerNode whose data-bearing reply comes back over
// the transport, so the TrafficMeter sees exactly what the paper's cost
// model counts:
//   query shipping  = QueryRequest (overhead) + QueryResult (ν(q))
//   update shipping = control request (overhead) + UpdateShip (ν(u))
//   object loading  = LoadRequest (overhead) + LoadData (l(o))
// plus Invalidation notices (overhead) from the server's registration-based
// coherence protocol. Many CacheNodes can share one ServerNode; each owns
// its endpoint name and (through the transport) its per-endpoint traffic
// meter.
//
// The node is a non-blocking message-driven state machine: every request
// carries a fresh correlation id and is parked in a pending-request table
// until the matching reply is delivered, at which point the caller's
// completion fires with the reply's payload size. The *_async entry points
// expose this directly (over a DelayedTransport replies arrive when the
// simulated clock reaches them); the synchronous API is a façade that
// issues the async request and waits via Transport::wait_until — which
// returns immediately on LoopbackTransport (delivery was inline) and pumps
// the shared event queue on an event-driven transport. At zero link
// latency the two transports produce byte-identical traffic in identical
// order, which is what keeps the golden tables pinned.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/server_node.h"
#include "net/transport.h"
#include "util/event_queue.h"
#include "util/types.h"
#include "workload/trace.h"

namespace delta::core {

class CacheNode {
 public:
  /// Invoked with the data-bearing reply's payload size (result bytes /
  /// update content / load bytes) when the reply is delivered.
  using Completion = std::function<void(Bytes)>;

  /// Registers the endpoint on the transport and attaches it to the server's
  /// registration table. Trace, server and transport outlive the node.
  CacheNode(const workload::Trace* trace, ServerNode* server,
            net::Transport* transport, std::string name = "cache");

  CacheNode(const CacheNode&) = delete;
  CacheNode& operator=(const CacheNode&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- client API (called by policies) ----

  void set_subscription(MetadataSubscription subscription);

  /// Invoked when an invalidation notice is delivered.
  void set_invalidation_handler(
      std::function<void(const workload::Update&)> handler);

  /// Ships the query to the repository; the result (ν(q) bytes) comes back
  /// as a QueryResult message. Returns the result size.
  Bytes ship_query(const workload::Query& q);

  /// Requests the update's content; it arrives as an UpdateShip message.
  /// Returns the content size (ν(u)).
  Bytes ship_update(const workload::Update& u);

  /// Bulk-loads the object; returns the bytes transferred (current object
  /// size plus bulk-copy framing). Registers the object for invalidations.
  Bytes load_object(ObjectId o);

  /// Tells the server this cache dropped the object (stops invalidations).
  /// Fire-and-forget: over an event-driven transport the notice is in
  /// flight when this returns.
  void notify_eviction(ObjectId o);

  // ---- non-blocking API (event-driven protocol) ----
  // Each call sends the request and returns immediately; `complete` fires
  // with the reply payload when the reply message is delivered (inline on
  // a synchronous transport, at simulated arrival time otherwise).

  void ship_query_async(const workload::Query& q, Completion complete);
  void ship_update_async(const workload::Update& u, Completion complete);
  void load_object_async(ObjectId o, Completion complete);

  /// Requests awaiting their reply (0 on a quiescent node).
  [[nodiscard]] std::size_t pending_requests() const {
    return pending_.size();
  }

  // ---- protocol hardening (ISSUE 8) ----

  /// Arms the client side of the hardened protocol: per-request deadlines
  /// on the transport's event queue, timeout -> retry with exponential
  /// backoff + deterministic jitter + a bounded attempt budget, the
  /// applied-notice dedup ledger, partition suspicion, and epoch resync on
  /// heal. Effective only over an event-driven transport (deadlines need a
  /// simulated clock); on a synchronous transport the options are inert.
  void set_protocol(const ProtocolOptions& options);
  [[nodiscard]] const ProtocolStats& protocol_stats() const { return stats_; }
  /// True when set_protocol actually armed (enabled + event-driven).
  [[nodiscard]] bool protocol_armed() const { return protocol_on_; }

  // ---- crash-stop endpoint faults (ISSUE 10) ----

  /// The cache process dies at this instant. Soft state is lost: the
  /// pending-correlation table (every outstanding request completes empty
  /// and counts failed — sync waiters unwind, open-loop windows drain, no
  /// query leaks), the resident-set bookkeeping, the notice-stamp
  /// high-water mark, and the suspicion state. Two ledgers deliberately
  /// survive as *modeled-durable* identity: the applied-notice ledger (the
  /// convergence instrument — wiping it would double-count resync replays)
  /// and the monotone correlation/registration-generation counters (they
  /// model epoch-prefixed ids, so a pre-crash correlation can never match a
  /// post-crash request and a stale eviction can never downgrade a
  /// registration). The policy's wipe (CachePolicy::on_crash_restart) is
  /// the engine's job, one event later. Requires the armed protocol.
  void crash_restart();
  /// The process restarts (cache-crash heal instant) or detects a restarted
  /// server (incarnation stamp): re-subscribe out of band, then rebuild the
  /// server's registration row and replay the missed notice ledger through
  /// one kRecoverRequest under a fresh epoch. Retries past the attempt
  /// budget like any resync; completion closes the reconvergence clock.
  void begin_recovery();
  /// Serialization backlog on this cache's uplink to the server — the
  /// pressure signal the policy-side degrade path gates on.
  [[nodiscard]] double uplink_backlog_seconds() const {
    return transport_->egress_backlog_seconds(transport_slot_,
                                              server_transport_slot_);
  }

  /// True when the transport delivers inline (cached at construction).
  /// Policies use this to tell a protocol violation from a legitimately
  /// stale coherence notice: over an event-driven transport an eviction
  /// notice can still be in flight when the server fans out an
  /// invalidation for the just-evicted object.
  [[nodiscard]] bool transport_synchronous() const {
    return transport_inline_;
  }

  // ---- repository metadata (cheap reads the protocol allows) ----

  [[nodiscard]] Bytes server_object_bytes(ObjectId o) const {
    return server_->object_bytes(o);
  }
  [[nodiscard]] Bytes load_cost(ObjectId o) const {
    return server_->load_cost(o);
  }
  [[nodiscard]] bool is_registered(ObjectId o) const {
    return server_->is_registered(slot_, o);
  }
  [[nodiscard]] std::size_t object_count() const {
    return server_->object_count();
  }

  /// Traffic delivered to this endpoint (all data-bearing replies),
  /// slot-addressed — no per-call name hash (see Transport::endpoint_meter).
  [[nodiscard]] const net::TrafficMeter& meter() const {
    return transport_->endpoint_meter(transport_slot_);
  }

 private:
  /// One outstanding request. The table is a linear-scan vector: a
  /// synchronous caller keeps at most one entry live, and even deep
  /// event-driven interleavings stay within a handful. Sync façades park
  /// raw result pointers (their stack locals — reentrancy-safe and free of
  /// std::function overhead on the replay hot path); async callers park a
  /// Completion.
  struct Pending {
    std::int64_t correlation = -1;
    net::MessageKind expected_reply = net::MessageKind::kControl;
    Completion complete;            // async path; empty for sync requests
    bool* sync_done = nullptr;      // sync path: completion flag ...
    Bytes* sync_payload = nullptr;  // ... and reply-payload destination
    // Retransmission state (protocol on): enough to rebuild the request.
    net::MessageKind kind = net::MessageKind::kControl;
    std::int64_t subject_id = -1;
    EventTime sent_at = 0;
    std::int64_t protocol_epoch = -1;
    std::int32_t attempts = 1;
    util::EventQueue::TimerId deadline;
  };

  const workload::Trace* trace_;
  ServerNode* server_;
  net::Transport* transport_;
  /// Prebuilt request message for the sync façade: sender identity fields
  /// are set once at construction, so request_and_wait only writes the
  /// four per-request fields. Safe to reuse because every send parks a
  /// copy (or delivers inline) before control can re-enter the façade.
  net::Message sync_request_;
  std::string name_;
  std::size_t slot_;  // this cache's row in the server registration table
  std::size_t transport_slot_ = 0;         // this endpoint's own slot
  std::size_t server_transport_slot_ = 0;  // fast-path request address
  std::function<void(const workload::Update&)> invalidation_handler_;
  std::vector<Pending> pending_;
  std::int64_t next_correlation_ = 0;
  bool transport_inline_ = false;  // cached Transport::synchronous()
  /// Notices queued while an invalidation handler is already on the stack
  /// (a blocking handler pumps deliveries); drained iteratively by the
  /// outermost apply_invalidation frame so deep notice backlogs cannot
  /// recurse the handler (see apply_invalidation).
  std::vector<std::int64_t> pending_invalidations_;
  std::size_t pending_invalidation_cursor_ = 0;
  bool in_invalidation_handler_ = false;

  ProtocolOptions protocol_;
  /// enabled AND the transport is event-driven (deadlines need a clock).
  bool protocol_on_ = false;
  util::EventQueue* events_ = nullptr;
  ProtocolStats stats_;
  /// Partition detector: consecutive request timeouts raise suspicion; the
  /// first completed reply afterwards closes the unavailability window and
  /// (resync_on_heal) triggers an epoch resync.
  std::int32_t consecutive_failures_ = 0;
  bool suspected_ = false;
  double suspect_since_ = 0.0;
  std::int64_t epoch_ = 0;
  bool resync_inflight_ = false;
  /// Crash-stop recovery state (ISSUE 10). `subscription_` mirrors the last
  /// set_subscription so a restart can re-subscribe; `resident_` mirrors
  /// load/evict traffic so a kRecoverRequest can carry the re-registration
  /// set; `server_incarnation_seen_` is the highest server incarnation
  /// stamp observed (restart detector); `recovering_` spans wipe/detection
  /// -> recovery-resync completion and drives the cold-miss and
  /// reconvergence yardsticks.
  MetadataSubscription subscription_ = MetadataSubscription::kNone;
  std::vector<std::uint8_t> resident_;
  std::int64_t server_incarnation_seen_ = 0;
  bool recovery_inflight_ = false;
  bool recovering_ = false;
  double recovery_started_at_ = 0.0;
  /// Gap detector over the server's stamped notice stream: highest ledger
  /// position seen. A live notice whose stamped range starts above this
  /// mark proves the wire lost notices in between — the only signal a
  /// quiet cache gets that a partition silently ate its one-way stream.
  std::int64_t notice_stamp_high_ = 0;
  /// Applied-notice ledger by update id: duplicate deliveries and resync
  /// replays of a notice that did arrive are applied exactly once.
  std::vector<std::uint8_t> applied_;
  /// Per-object registration generation, stamped into load requests and
  /// eviction notices (see ServerNode reg_epoch).
  std::vector<std::int64_t> reg_gen_;

  [[nodiscard]] net::Message request(net::MessageKind kind,
                                     std::int64_t subject_id,
                                     EventTime sent_at,
                                     std::int64_t correlation) const;
  /// Parks `complete` in the pending table and sends the request. Returns
  /// the correlation id.
  std::int64_t send_request(net::MessageKind kind, std::int64_t subject_id,
                            EventTime sent_at,
                            net::MessageKind expected_reply,
                            Completion complete,
                            std::int64_t protocol_epoch = -1);
  /// Sync façade core: sends the request and waits for its reply.
  Bytes request_and_wait(net::MessageKind kind, std::int64_t subject_id,
                         EventTime sent_at,
                         net::MessageKind expected_reply,
                         std::int64_t protocol_epoch = -1);
  void handle_message(const net::Message& m);
  /// Resolves one invalidation notice (an update id) against the shared
  /// trace and runs the policy's invalidation handler.
  void apply_invalidation(std::int64_t update_id);
  void observe_notice_stamp(const net::Message& m, std::int64_t ids);

  /// Releases a detached pending entry with the reply's payload.
  static void finish(Pending& done, Bytes payload);
  [[nodiscard]] double deadline_delay(std::int32_t attempt,
                                      std::int64_t correlation) const;
  void arm_deadline(Pending& p);
  static void on_deadline(void* self, std::uint64_t correlation);
  void handle_deadline(std::int64_t correlation);
  /// True for requests whose loss would diverge durable state (loads keep
  /// the server registration table in step, resync closes the staleness
  /// hole) — these retry past the attempt budget, bounded by heal time.
  [[nodiscard]] static bool retries_forever(net::MessageKind expected_reply) {
    return expected_reply == net::MessageKind::kLoadData ||
           expected_reply == net::MessageKind::kResyncData;
  }
  void note_success();
  void note_failure();
  void start_resync();
  void apply_resync_payload(const net::Message& m);
  /// Fills a kRecoverRequest's re-registration payload from the current
  /// resident set (also used by the retransmit path — the set carried is
  /// always the sender's current one, which is what the row reset means).
  void fill_recover_payload(net::Message& msg) const;
  void observe_incarnation(const net::Message& m);
};

}  // namespace delta::core
