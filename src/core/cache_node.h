// CacheNode: a cache client endpoint of the middleware (Figure 1).
//
// It is the surface the cache policies program against: ship a query, ship
// an update, bulk-load an object, notify an eviction — each call is a real
// request message to the ServerNode whose data-bearing reply comes back over
// the transport, so the TrafficMeter sees exactly what the paper's cost
// model counts:
//   query shipping  = QueryRequest (overhead) + QueryResult (ν(q))
//   update shipping = control request (overhead) + UpdateShip (ν(u))
//   object loading  = LoadRequest (overhead) + LoadData (l(o))
// plus Invalidation notices (overhead) from the server's registration-based
// coherence protocol. Many CacheNodes can share one ServerNode; each owns
// its endpoint name, its link model, and (through the transport) its
// per-endpoint traffic meter.
#pragma once

#include <functional>
#include <string>

#include "core/server_node.h"
#include "net/link_model.h"
#include "net/transport.h"
#include "util/types.h"
#include "workload/trace.h"

namespace delta::core {

class CacheNode {
 public:
  /// Registers the endpoint on the transport and attaches it to the server's
  /// registration table. Trace, server and transport outlive the node.
  CacheNode(const workload::Trace* trace, ServerNode* server,
            net::Transport* transport, std::string name = "cache",
            net::LinkModel link = net::LinkModel{});

  CacheNode(const CacheNode&) = delete;
  CacheNode& operator=(const CacheNode&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- client API (called by policies) ----

  void set_subscription(MetadataSubscription subscription);

  /// Invoked (synchronously) when an invalidation notice is delivered.
  void set_invalidation_handler(
      std::function<void(const workload::Update&)> handler);

  /// Ships the query to the repository; the result (ν(q) bytes) comes back
  /// as a QueryResult message. Returns the result size.
  Bytes ship_query(const workload::Query& q);

  /// Requests the update's content; it arrives as an UpdateShip message.
  /// Returns the content size (ν(u)).
  Bytes ship_update(const workload::Update& u);

  /// Bulk-loads the object; returns the bytes transferred (current object
  /// size plus bulk-copy framing). Registers the object for invalidations.
  Bytes load_object(ObjectId o);

  /// Tells the server this cache dropped the object (stops invalidations).
  void notify_eviction(ObjectId o);

  // ---- repository metadata (cheap reads the protocol allows) ----

  [[nodiscard]] Bytes server_object_bytes(ObjectId o) const {
    return server_->object_bytes(o);
  }
  [[nodiscard]] Bytes load_cost(ObjectId o) const {
    return server_->load_cost(o);
  }
  [[nodiscard]] bool is_registered(ObjectId o) const {
    return server_->is_registered(slot_, o);
  }
  [[nodiscard]] std::size_t object_count() const {
    return server_->object_count();
  }

  /// Traffic delivered to this endpoint (all data-bearing replies; see
  /// Transport::endpoint_meter).
  [[nodiscard]] const net::TrafficMeter& meter() const {
    return transport_->endpoint_meter(name_);
  }
  [[nodiscard]] const net::LinkModel& link() const { return link_; }

 private:
  const workload::Trace* trace_;
  ServerNode* server_;
  net::Transport* transport_;
  std::string name_;
  std::size_t slot_;  // this cache's row in the server registration table
  std::size_t server_transport_slot_ = 0;  // fast-path reply address
  net::LinkModel link_;
  std::function<void(const workload::Update&)> invalidation_handler_;

  [[nodiscard]] net::Message request(net::MessageKind kind,
                                     std::int64_t subject_id,
                                     EventTime sent_at) const;
  void handle_message(const net::Message& m);
};

}  // namespace delta::core
