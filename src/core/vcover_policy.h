// VCoverPolicy: the paper's algorithm (Fig. 3) assembled from its two
// modules. Queries whose objects are all cached go to the UpdateManager
// (incremental vertex-cover decision between query shipping and update
// shipping); queries touching missing objects are shipped and handed to the
// LoadManager (randomized bypass-caching admission over lazy GDS).
//
// The optional preshipping extension (§4 Discussion) proactively ships
// updates for "hot" cached objects on arrival, trading a little traffic for
// lower response times on currency-constrained queries.
#pragma once

#include <memory>

#include "cache/cache_store.h"
#include "cache/eviction_policy.h"
#include "core/cache_node.h"
#include "core/delta_system.h"
#include "core/load_manager.h"
#include "core/policy.h"
#include "core/update_manager.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace delta::core {

struct VCoverOptions {
  Bytes cache_capacity;
  LoadManager::Options loading;
  /// Remainder-rule memory for shipped queries (ablation A4 turns it off).
  bool remember_shipped_queries = true;
  /// Object caching algorithm: Greedy-Dual-Size (paper) or LRU (ablation).
  bool use_lru = false;
  /// Preshipping extension (E1).
  bool preship = false;
  double preship_heat_threshold = 3.0;
  double preship_heat_decay = 0.98;
  std::uint64_t rng_seed = 0xD517A;
  /// Expected peak resident-object count. Pre-sizes every per-object side
  /// table (store, evictor, update/load managers, preship heat) so
  /// million-object runs never pay growth rehashes on the replay hot path.
  /// 0 keeps the default (grow on demand).
  std::size_t expected_resident_objects = 0;
};

class VCoverPolicy final : public CachePolicy {
 public:
  VCoverPolicy(CacheNode* cache, const VCoverOptions& options);
  /// Single-cache compatibility: bind to the façade's cache endpoint.
  VCoverPolicy(DeltaSystem* system, const VCoverOptions& options)
      : VCoverPolicy(cache_endpoint(system), options) {}

  void on_update(const workload::Update& u) override;
  QueryOutcome on_query(const workload::Query& q) override;
  void on_query_async(const workload::Query& q, QueryDone done) override;
  /// Crash-stop wipe (ISSUE 10): the resident store, the interaction graph,
  /// the eviction metadata, the bypass-rule counters, and the preship heat
  /// all die with the process. Instrument counters (loads, evictions, churn
  /// log) survive — they measure the experiment, not the process.
  void on_crash_restart() override;
  /// Overload degradation (ISSUE 8): under uplink pressure an all-cached
  /// query whose outstanding updates are ALL newer than its t(q) horizon
  /// is answered from the cache as-is — stale-but-within-tolerance — and
  /// skips the cover computation entirely (no update shipping, no server
  /// round trip competes with the backlog).
  void set_admission(const AdmissionOptions& options) override {
    admission_ = options;
  }
  [[nodiscard]] std::int64_t degraded_queries() const override {
    return degraded_queries_;
  }
  [[nodiscard]] const char* name() const override { return "VCover"; }

  // ---- introspection for tests / ablation benches ----
  [[nodiscard]] const cache::CacheStore& store() const { return store_; }
  [[nodiscard]] const UpdateManager& update_manager() const {
    return update_manager_;
  }
  [[nodiscard]] std::int64_t loads() const { return loads_; }
  [[nodiscard]] std::int64_t evictions() const { return evictions_; }
  [[nodiscard]] std::int64_t cache_answers() const { return cache_answers_; }
  [[nodiscard]] std::int64_t preshipped() const { return preshipped_; }

  /// Load/eviction timeline (diagnostics for the loading ablations).
  struct ChurnEntry {
    EventTime time = 0;
    ObjectId object;
    Bytes bytes;
    bool is_load = false;
  };
  [[nodiscard]] const std::vector<ChurnEntry>& churn_log() const {
    return churn_log_;
  }

 private:
  CacheNode* system_;  // the cache endpoint this policy drives
  VCoverOptions options_;
  cache::CacheStore store_;
  std::unique_ptr<cache::EvictionPolicy> evictor_;
  UpdateManager update_manager_;
  LoadManager load_manager_;
  util::FlatMap<ObjectId, double> heat_;  // preship popularity signal
  std::vector<ObjectId> missing_;         // per-query scratch
  std::vector<cache::LoadCandidate> eager_batch_;  // eager-mode scratch
  std::int64_t loads_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t cache_answers_ = 0;
  std::int64_t preshipped_ = 0;
  AdmissionOptions admission_;
  std::int64_t degraded_queries_ = 0;
  std::vector<ChurnEntry> churn_log_;
  EventTime now_ = 0;

  void evict_object(ObjectId o);
  void shed_overflow();
  /// True when overload pressure holds AND a cached answer for `q` (all
  /// objects resident) is still within its staleness tolerance.
  [[nodiscard]] bool can_degrade(const workload::Query& q) const;
  /// One dispatch core serves both query entry points; `tx` is the
  /// transmitter the decisions emit traffic through — synchronous
  /// (request_and_wait per call, the closed-loop golden path) or async
  /// (overlapping *_async requests correlated on one AsyncQueryContext).
  /// Both transmitters are defined in the .cpp, where the instantiations
  /// live.
  template <typename Tx>
  void dispatch_query(const workload::Query& q, QueryOutcome& outcome,
                      Tx&& tx);
  template <typename Tx>
  void apply_batch(const std::vector<cache::LoadCandidate>& batch,
                   QueryOutcome& outcome, Tx&& tx);
};

}  // namespace delta::core
