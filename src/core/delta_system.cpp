#include "core/delta_system.h"

#include "util/check.h"

namespace delta::core {

DeltaSystem::DeltaSystem(const workload::Trace* trace) : trace_(trace) {
  DELTA_CHECK(trace != nullptr);
  object_bytes_ = trace->initial_object_bytes;
  registered_.assign(object_bytes_.size(), 0);

  // The server endpoint answers requests with data-bearing replies; the
  // cache endpoint receives them. Handlers close over `this` only.
  transport_.register_endpoint("server", [this](const net::Message& m) {
    net::Message reply;
    reply.subject_id = m.subject_id;
    switch (m.kind) {
      case net::MessageKind::kQueryRequest: {
        const auto& q =
            trace_->queries[static_cast<std::size_t>(m.subject_id)];
        reply.kind = net::MessageKind::kQueryResult;
        reply.payload = q.cost;
        transport_.send("cache", reply, net::Mechanism::kQueryShip);
        break;
      }
      case net::MessageKind::kControl: {
        // "ship update <id>" request.
        const auto& u =
            trace_->updates[static_cast<std::size_t>(m.subject_id)];
        reply.kind = net::MessageKind::kUpdateShip;
        reply.payload = u.cost;
        transport_.send("cache", reply, net::Mechanism::kUpdateShip);
        break;
      }
      case net::MessageKind::kLoadRequest: {
        const auto idx = checked(ObjectId{m.subject_id});
        reply.kind = net::MessageKind::kLoadData;
        reply.payload = object_bytes_[idx] + kLoadOverheadBytes;
        registered_[idx] = 1;
        transport_.send("cache", reply, net::Mechanism::kObjectLoad);
        break;
      }
      case net::MessageKind::kInvalidation: {
        // Cache -> server: eviction notice (re-using the kind for the
        // reverse coherence direction).
        const auto idx = checked(ObjectId{m.subject_id});
        registered_[idx] = 0;
        break;
      }
      default:
        DELTA_CHECK_MSG(false, "server received unexpected message kind");
    }
  });

  transport_.register_endpoint("cache", [this](const net::Message& m) {
    handle_cache_message(m);
  });
}

std::size_t DeltaSystem::checked(ObjectId o) const {
  DELTA_CHECK(o.valid());
  const auto idx = static_cast<std::size_t>(o.value());
  DELTA_CHECK(idx < object_bytes_.size());
  return idx;
}

void DeltaSystem::handle_cache_message(const net::Message& m) {
  // Data-bearing replies mutate nothing here: the calling policy applies
  // their effects synchronously after the send() returns. Invalidations are
  // forwarded to the policy's handler.
  if (m.kind == net::MessageKind::kInvalidation) {
    DELTA_CHECK(pending_invalidation_ != nullptr);
    const workload::Update* u = pending_invalidation_;
    pending_invalidation_ = nullptr;
    if (invalidation_handler_) invalidation_handler_(*u);
  }
}

void DeltaSystem::ingest_update(const workload::Update& u) {
  const std::size_t idx = checked(u.object);
  object_bytes_[idx] += u.cost;  // inserts grow the repository object
  const bool notify =
      subscription_ == MetadataSubscription::kAll ||
      (subscription_ == MetadataSubscription::kRegisteredOnly &&
       registered_[idx] != 0);
  if (!notify) return;
  net::Message msg;
  msg.kind = net::MessageKind::kInvalidation;
  msg.subject_id = u.id.value();
  msg.sent_at = u.time;
  pending_invalidation_ = &u;
  transport_.send("cache", msg, net::Mechanism::kOverhead);
}

void DeltaSystem::set_subscription(MetadataSubscription subscription) {
  subscription_ = subscription;
}

void DeltaSystem::set_invalidation_handler(
    std::function<void(const workload::Update&)> handler) {
  invalidation_handler_ = std::move(handler);
}

Bytes DeltaSystem::ship_query(const workload::Query& q) {
  net::Message msg;
  msg.kind = net::MessageKind::kQueryRequest;
  msg.subject_id = q.id.value();
  msg.sent_at = q.time;
  transport_.send("server", msg, net::Mechanism::kOverhead);
  return q.cost;  // the QueryResult reply carried ν(q) bytes
}

Bytes DeltaSystem::ship_update(const workload::Update& u) {
  net::Message msg;
  msg.kind = net::MessageKind::kControl;
  msg.subject_id = u.id.value();
  msg.sent_at = u.time;
  transport_.send("server", msg, net::Mechanism::kOverhead);
  return u.cost;
}

Bytes DeltaSystem::load_object(ObjectId o) {
  const std::size_t idx = checked(o);
  net::Message msg;
  msg.kind = net::MessageKind::kLoadRequest;
  msg.subject_id = o.value();
  transport_.send("server", msg, net::Mechanism::kOverhead);
  DELTA_CHECK(registered_[idx] == 1);
  return object_bytes_[idx] + kLoadOverheadBytes;
}

void DeltaSystem::notify_eviction(ObjectId o) {
  net::Message msg;
  msg.kind = net::MessageKind::kInvalidation;
  msg.subject_id = o.value();
  transport_.send("server", msg, net::Mechanism::kOverhead);
  DELTA_CHECK(registered_[checked(o)] == 0);
}

Bytes DeltaSystem::server_object_bytes(ObjectId o) const {
  return object_bytes_[checked(o)];
}

Bytes DeltaSystem::load_cost(ObjectId o) const {
  return server_object_bytes(o) + kLoadOverheadBytes;
}

bool DeltaSystem::is_registered(ObjectId o) const {
  return registered_[checked(o)] != 0;
}

}  // namespace delta::core
