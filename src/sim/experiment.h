// Shared experiment scaffolding: the paper-default setup (sky, partitions,
// trace parameters), a policy factory, and the runners the figure benches
// and examples share.
//
// Paper defaults (§6.1): ~800 GB server over 68 spatial objects; 250 k
// queries + 250 k updates; cache 30 % of the server; Benefit window
// δ = 1000; ~300 GB of post-warm-up query traffic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/benefit_policy.h"
#include "core/vcover_policy.h"
#include "core/yardsticks.h"
#include "htm/partition_map.h"
#include "sim/event_engine.h"
#include "sim/multi_cache.h"
#include "sim/simulator.h"
#include "storage/density_model.h"
#include "workload/trace_generator.h"
#include "workload/trace_split.h"

namespace delta::sim {

struct SetupParams {
  int base_level = 5;
  std::uint64_t sky_seed = 2010;
  /// ≈ 800 GB at the modeled 2 KiB/row.
  double total_rows = 4.0e8;
  std::size_t object_target = 68;
  std::uint64_t trace_seed = 1;
  workload::TraceParams trace;
  double cache_fraction = 0.30;
  /// Tuned for this synthetic trace via ablation A2 (the paper tuned its
  /// own trace to 1000; see EXPERIMENTS.md).
  std::int64_t benefit_window = 50'000;
  double benefit_alpha = 0.3;
};

/// A fully-built experiment world: density model, partition map, trace.
class Setup {
 public:
  explicit Setup(const SetupParams& params);

  [[nodiscard]] const SetupParams& params() const { return params_; }
  [[nodiscard]] const storage::DensityModel& density() const {
    return *density_;
  }
  [[nodiscard]] std::shared_ptr<const htm::PartitionMap> map() const {
    return map_;
  }
  [[nodiscard]] const workload::Trace& trace() const { return trace_; }
  [[nodiscard]] workload::Trace& mutable_trace() { return trace_; }

  /// Server size (sum of initial object bytes).
  [[nodiscard]] Bytes server_bytes() const;
  /// Default cache capacity: cache_fraction of the server size.
  [[nodiscard]] Bytes cache_capacity() const;

  /// Builds a partition map of a different granularity over the same sky
  /// (for the Fig. 8b sweep).
  [[nodiscard]] std::shared_ptr<const htm::PartitionMap> map_with_objects(
      std::size_t target_count) const;

 private:
  SetupParams params_;
  std::shared_ptr<storage::DensityModel> density_;
  std::shared_ptr<const htm::PartitionMap> map_;
  workload::Trace trace_;
};

enum class PolicyKind { kNoCache, kReplica, kBenefit, kVCover, kSOptimal };

[[nodiscard]] const char* to_string(PolicyKind kind);

struct PolicyOverrides {
  core::VCoverOptions vcover;  // capacity filled in by the runner
  /// window=0 / alpha=0 mean "use SetupParams defaults".
  core::BenefitOptions benefit{Bytes{}, 0, 0.0};
  core::SOptimalOptions soptimal;  // capacity filled in
};

/// Builds a policy of `kind` driving `cache`, with the same defaults-and-
/// overrides resolution the runners use.
std::unique_ptr<core::CachePolicy> make_policy(
    PolicyKind kind, core::CacheNode& cache, const workload::Trace& trace,
    Bytes cache_capacity, const SetupParams& params,
    const PolicyOverrides& overrides = PolicyOverrides{});

/// Runs one policy over the trace with a fresh DeltaSystem.
RunResult run_one(PolicyKind kind, const workload::Trace& trace,
                  Bytes cache_capacity, const SetupParams& params,
                  const PolicyOverrides& overrides = PolicyOverrides{},
                  std::int64_t series_stride = 2000);

/// Runs one policy kind over the trace with N cache endpoints sharing a
/// fresh repository; queries are routed per `strategy`, and every endpoint
/// gets its own policy instance with `per_endpoint_capacity` of cache.
/// With endpoint_count == 1 this reproduces run_one byte-for-byte, and any
/// `parallel` engine/thread-count choice yields the same RunResults (see
/// sim::ParallelOptions).
MultiRunResult run_one_multi(PolicyKind kind, const workload::Trace& trace,
                             Bytes per_endpoint_capacity,
                             const SetupParams& params,
                             std::size_t endpoint_count,
                             workload::SplitStrategy strategy,
                             const PolicyOverrides& overrides =
                                 PolicyOverrides{},
                             std::int64_t series_stride = 2000,
                             const ParallelOptions& parallel =
                                 ParallelOptions{});

/// Runs one policy kind over the trace on the event-driven engine: N cache
/// endpoints over a latency-aware transport (see sim/event_engine.h). With
/// the default zero-latency EventEngineOptions this reproduces
/// run_one_multi's figures byte-for-byte while additionally measuring the
/// simulated response-time/staleness/contention yardsticks.
EventRunResult run_one_event(PolicyKind kind, const workload::Trace& trace,
                             Bytes per_endpoint_capacity,
                             const SetupParams& params,
                             std::size_t endpoint_count,
                             workload::SplitStrategy strategy,
                             const EventEngineOptions& engine =
                                 EventEngineOptions{},
                             const PolicyOverrides& overrides =
                                 PolicyOverrides{});

/// Runs the two algorithms and three yardsticks (Fig. 7b's cast).
std::vector<RunResult> run_all_policies(const workload::Trace& trace,
                                        Bytes cache_capacity,
                                        const SetupParams& params,
                                        std::int64_t series_stride = 2000);

}  // namespace delta::sim
