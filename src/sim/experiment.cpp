#include "sim/experiment.h"

#include "util/check.h"

namespace delta::sim {

Setup::Setup(const SetupParams& params) : params_(params) {
  density_ = std::make_shared<storage::DensityModel>(params.base_level,
                                                     params.sky_seed);
  density_->scale_to_total_rows(params.total_rows);
  map_ = std::make_shared<htm::PartitionMap>(htm::PartitionMap::build(
      params.base_level, density_->weights(), params.object_target));
  workload::TraceGenerator generator{map_, *density_, params.trace};
  trace_ = generator.generate(params.trace_seed);
}

Bytes Setup::server_bytes() const {
  Bytes total;
  for (const Bytes b : trace_.initial_object_bytes) total += b;
  return total;
}

Bytes Setup::cache_capacity() const {
  return Bytes{static_cast<std::int64_t>(server_bytes().as_double() *
                                         params_.cache_fraction)};
}

std::shared_ptr<const htm::PartitionMap> Setup::map_with_objects(
    std::size_t target_count) const {
  return std::make_shared<htm::PartitionMap>(htm::PartitionMap::build(
      params_.base_level, density_->weights(), target_count));
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoCache:
      return "NoCache";
    case PolicyKind::kReplica:
      return "Replica";
    case PolicyKind::kBenefit:
      return "Benefit";
    case PolicyKind::kVCover:
      return "VCover";
    case PolicyKind::kSOptimal:
      return "SOptimal";
  }
  return "?";
}

std::unique_ptr<core::CachePolicy> make_policy(
    PolicyKind kind, core::CacheNode& cache, const workload::Trace& trace,
    Bytes cache_capacity, const SetupParams& params,
    const PolicyOverrides& overrides) {
  switch (kind) {
    case PolicyKind::kNoCache:
      return std::make_unique<core::NoCachePolicy>(&cache);
    case PolicyKind::kReplica:
      return std::make_unique<core::ReplicaPolicy>(&cache);
    case PolicyKind::kBenefit: {
      core::BenefitOptions opts = overrides.benefit;
      opts.cache_capacity = cache_capacity;
      if (opts.window <= 0) opts.window = params.benefit_window;
      opts.alpha = opts.alpha > 0.0 ? opts.alpha : params.benefit_alpha;
      return std::make_unique<core::BenefitPolicy>(&cache, opts);
    }
    case PolicyKind::kVCover: {
      core::VCoverOptions opts = overrides.vcover;
      opts.cache_capacity = cache_capacity;
      return std::make_unique<core::VCoverPolicy>(&cache, opts);
    }
    case PolicyKind::kSOptimal: {
      core::SOptimalOptions opts = overrides.soptimal;
      opts.cache_capacity = cache_capacity;
      return std::make_unique<core::SOptimalPolicy>(&cache, &trace, opts);
    }
  }
  DELTA_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

RunResult run_one(PolicyKind kind, const workload::Trace& trace,
                  Bytes cache_capacity, const SetupParams& params,
                  const PolicyOverrides& overrides,
                  std::int64_t series_stride) {
  core::DeltaSystem system{&trace};
  const std::unique_ptr<core::CachePolicy> policy = make_policy(
      kind, system.cache(), trace, cache_capacity, params, overrides);
  return run_policy(trace, system, *policy, series_stride);
}

MultiRunResult run_one_multi(PolicyKind kind, const workload::Trace& trace,
                             Bytes per_endpoint_capacity,
                             const SetupParams& params,
                             std::size_t endpoint_count,
                             workload::SplitStrategy strategy,
                             const PolicyOverrides& overrides,
                             std::int64_t series_stride,
                             const ParallelOptions& parallel) {
  // Computed once and handed to both the policies and the runner, so the
  // routing and (for offline SOptimal) each endpoint's hindsight shard are
  // the same split by construction.
  const std::vector<std::uint32_t> assignment =
      workload::assign_queries(trace, endpoint_count, strategy);
  const bool shard_soptimal =
      kind == PolicyKind::kSOptimal && endpoint_count > 1;
  return run_policy_multi(
      trace, endpoint_count, strategy,
      [&](core::CacheNode& cache, std::size_t index) {
        PolicyOverrides endpoint_overrides = overrides;
        if (shard_soptimal) {
          endpoint_overrides.soptimal.query_assignment = &assignment;
          endpoint_overrides.soptimal.endpoint =
              static_cast<std::uint32_t>(index);
        }
        return make_policy(kind, cache, trace, per_endpoint_capacity, params,
                           endpoint_overrides);
      },
      series_stride, LatencyModel{}, &assignment, parallel);
}

EventRunResult run_one_event(PolicyKind kind, const workload::Trace& trace,
                             Bytes per_endpoint_capacity,
                             const SetupParams& params,
                             std::size_t endpoint_count,
                             workload::SplitStrategy strategy,
                             const EventEngineOptions& engine,
                             const PolicyOverrides& overrides) {
  // Same routing/hindsight-shard agreement as run_one_multi: one split,
  // handed to both the router and any sharded SOptimal instance.
  const std::vector<std::uint32_t> assignment =
      workload::assign_queries(trace, endpoint_count, strategy);
  const bool shard_soptimal =
      kind == PolicyKind::kSOptimal && endpoint_count > 1;
  return run_policy_event(
      trace, endpoint_count, strategy,
      [&](core::CacheNode& cache, std::size_t index) {
        PolicyOverrides endpoint_overrides = overrides;
        if (shard_soptimal) {
          endpoint_overrides.soptimal.query_assignment = &assignment;
          endpoint_overrides.soptimal.endpoint =
              static_cast<std::uint32_t>(index);
        }
        return make_policy(kind, cache, trace, per_endpoint_capacity, params,
                           endpoint_overrides);
      },
      engine, &assignment);
}

std::vector<RunResult> run_all_policies(const workload::Trace& trace,
                                        Bytes cache_capacity,
                                        const SetupParams& params,
                                        std::int64_t series_stride) {
  std::vector<RunResult> results;
  for (const PolicyKind kind :
       {PolicyKind::kNoCache, PolicyKind::kReplica, PolicyKind::kBenefit,
        PolicyKind::kVCover, PolicyKind::kSOptimal}) {
    results.push_back(run_one(kind, trace, cache_capacity, params,
                              PolicyOverrides{}, series_stride));
  }
  return results;
}

}  // namespace delta::sim
