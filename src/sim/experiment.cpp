#include "sim/experiment.h"

#include "util/check.h"

namespace delta::sim {

Setup::Setup(const SetupParams& params) : params_(params) {
  density_ = std::make_shared<storage::DensityModel>(params.base_level,
                                                     params.sky_seed);
  density_->scale_to_total_rows(params.total_rows);
  map_ = std::make_shared<htm::PartitionMap>(htm::PartitionMap::build(
      params.base_level, density_->weights(), params.object_target));
  workload::TraceGenerator generator{map_, *density_, params.trace};
  trace_ = generator.generate(params.trace_seed);
}

Bytes Setup::server_bytes() const {
  Bytes total;
  for (const Bytes b : trace_.initial_object_bytes) total += b;
  return total;
}

Bytes Setup::cache_capacity() const {
  return Bytes{static_cast<std::int64_t>(server_bytes().as_double() *
                                         params_.cache_fraction)};
}

std::shared_ptr<const htm::PartitionMap> Setup::map_with_objects(
    std::size_t target_count) const {
  return std::make_shared<htm::PartitionMap>(htm::PartitionMap::build(
      params_.base_level, density_->weights(), target_count));
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoCache:
      return "NoCache";
    case PolicyKind::kReplica:
      return "Replica";
    case PolicyKind::kBenefit:
      return "Benefit";
    case PolicyKind::kVCover:
      return "VCover";
    case PolicyKind::kSOptimal:
      return "SOptimal";
  }
  return "?";
}

RunResult run_one(PolicyKind kind, const workload::Trace& trace,
                  Bytes cache_capacity, const SetupParams& params,
                  const PolicyOverrides& overrides,
                  std::int64_t series_stride) {
  core::DeltaSystem system{&trace};
  std::unique_ptr<core::CachePolicy> policy;
  switch (kind) {
    case PolicyKind::kNoCache:
      policy = std::make_unique<core::NoCachePolicy>(&system);
      break;
    case PolicyKind::kReplica:
      policy = std::make_unique<core::ReplicaPolicy>(&system);
      break;
    case PolicyKind::kBenefit: {
      core::BenefitOptions opts = overrides.benefit;
      opts.cache_capacity = cache_capacity;
      if (opts.window <= 0) opts.window = params.benefit_window;
      opts.alpha = opts.alpha > 0.0 ? opts.alpha : params.benefit_alpha;
      policy = std::make_unique<core::BenefitPolicy>(&system, opts);
      break;
    }
    case PolicyKind::kVCover: {
      core::VCoverOptions opts = overrides.vcover;
      opts.cache_capacity = cache_capacity;
      policy = std::make_unique<core::VCoverPolicy>(&system, opts);
      break;
    }
    case PolicyKind::kSOptimal: {
      core::SOptimalOptions opts = overrides.soptimal;
      opts.cache_capacity = cache_capacity;
      policy = std::make_unique<core::SOptimalPolicy>(&system, &trace, opts);
      break;
    }
  }
  return run_policy(trace, system, *policy, series_stride);
}

std::vector<RunResult> run_all_policies(const workload::Trace& trace,
                                        Bytes cache_capacity,
                                        const SetupParams& params,
                                        std::int64_t series_stride) {
  std::vector<RunResult> results;
  for (const PolicyKind kind :
       {PolicyKind::kNoCache, PolicyKind::kReplica, PolicyKind::kBenefit,
        PolicyKind::kVCover, PolicyKind::kSOptimal}) {
    results.push_back(run_one(kind, trace, cache_capacity, params,
                              PolicyOverrides{}, series_stride));
  }
  return results;
}

}  // namespace delta::sim
