#include "sim/simulator.h"

#include <chrono>

#include "util/check.h"

namespace delta::sim {

// NOTE: sim/multi_cache.cpp's run_policy_multi replays the same event
// semantics (warm-up capture, latency accounting, series observation) over
// N endpoints, and MultiCacheSimTest.OneEndpointReproducesSingleCache-
// ByteForByte pins the two loops to byte-identical results — change replay
// semantics in both places together.
//
// DETERMINISM CONSTRAINT (golden tables): tests/sim_golden_test.cpp pins
// this loop's figures byte-for-byte. The policies it drives keep hot state
// in util::FlatMap, whose visit order depends on insertion history — so no
// policy decision may depend on map iteration order. Where a fold over a
// map picks a winner it must carry an explicit (value, id) tie-break, and
// batch decisions must be totally ordered by an explicit sort (see the
// audit notes at each for_each call site; regression-pinned by
// tests/iteration_order_test.cpp).
double proxy_response_seconds(const LatencyModel& latency,
                              const core::QueryOutcome& outcome) {
  switch (outcome.path) {
    case core::QueryOutcome::Path::kCacheFresh:
      return latency.local_exec_seconds;
    case core::QueryOutcome::Path::kCacheAfterUpdates:
      return latency.local_exec_seconds +
             latency.proxy_link.transfer_seconds(outcome.max_update_bytes);
    case core::QueryOutcome::Path::kShipped:
      return latency.server_exec_seconds +
             latency.proxy_link.transfer_seconds(outcome.result_bytes);
  }
  DELTA_CHECK_MSG(false, "unknown query outcome path");
  return 0.0;
}

RunResult run_policy(const workload::Trace& trace,
                     core::DeltaSystem& system, core::CachePolicy& policy,
                     std::int64_t series_stride,
                     const LatencyModel& latency,
                     util::QuantileSketch* latency_sink) {
  const auto start = std::chrono::steady_clock::now();

  RunResult result;
  result.policy_name = policy.name();
  result.warmup_end = trace.info.warmup_end_event;
  result.series = util::CumulativeSeries{series_stride};

  const net::TrafficMeter& meter = system.meter();
  std::array<Bytes, 3> at_warmup{};
  bool warmup_captured = false;
  const auto capture_warmup = [&] {
    at_warmup = {meter.total(net::Mechanism::kQueryShip),
                 meter.total(net::Mechanism::kUpdateShip),
                 meter.total(net::Mechanism::kObjectLoad)};
    warmup_captured = true;
  };
  if (trace.info.warmup_end_event == 0) capture_warmup();

  for (const workload::Event& event : trace.order) {
    const bool is_update = event.kind == workload::Event::Kind::kUpdate;
    const EventTime now =
        is_update
            ? trace.updates[static_cast<std::size_t>(event.index)].time
            : trace.queries[static_cast<std::size_t>(event.index)].time;
    // Snapshot the meter the moment the measurement window opens, before
    // this event's traffic.
    if (!warmup_captured && now >= trace.info.warmup_end_event) {
      capture_warmup();
    }

    if (is_update) {
      system.ingest_update(
          trace.updates[static_cast<std::size_t>(event.index)]);
    } else {
      const workload::Query& q =
          trace.queries[static_cast<std::size_t>(event.index)];
      const core::QueryOutcome outcome = policy.on_query(q);
      ++result.queries;
      const double seconds = proxy_response_seconds(latency, outcome);
      switch (outcome.path) {
        case core::QueryOutcome::Path::kCacheFresh:
          ++result.cache_fresh;
          break;
        case core::QueryOutcome::Path::kCacheAfterUpdates:
          ++result.cache_after_updates;
          break;
        case core::QueryOutcome::Path::kShipped:
          ++result.shipped;
          break;
      }
      result.objects_loaded += outcome.objects_loaded;
      if (now >= trace.info.warmup_end_event) {
        result.postwarmup_latency.add(seconds);
        if (latency_sink != nullptr) latency_sink->add(seconds);
      }
    }
    result.series.observe(now, meter.figure_total().as_double());
  }
  result.series.finalize();
  if (!warmup_captured) capture_warmup();  // warm-up spanned the whole run

  result.total_traffic = meter.figure_total();
  const std::array<Bytes, 3> final_by{
      meter.total(net::Mechanism::kQueryShip),
      meter.total(net::Mechanism::kUpdateShip),
      meter.total(net::Mechanism::kObjectLoad)};
  for (std::size_t i = 0; i < 3; ++i) {
    result.postwarmup_by_mechanism[i] = final_by[i] - at_warmup[i];
    result.postwarmup_traffic += result.postwarmup_by_mechanism[i];
  }
  result.overhead_traffic = meter.total(net::Mechanism::kOverhead);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace delta::sim
