#include "sim/multi_cache.h"

#include <chrono>
#include <string>

#include "net/transport.h"
#include "util/check.h"

namespace delta::sim {

namespace {

std::array<Bytes, 3> mechanism_snapshot(const net::TrafficMeter& meter) {
  return {meter.total(net::Mechanism::kQueryShip),
          meter.total(net::Mechanism::kUpdateShip),
          meter.total(net::Mechanism::kObjectLoad)};
}

}  // namespace

// NOTE: mirrors sim/simulator.cpp's run_policy event semantics exactly;
// the N=1 byte-for-byte equivalence is pinned by MultiCacheSimTest — keep
// the two replay loops in lockstep.
MultiRunResult run_policy_multi(const workload::Trace& trace,
                                std::size_t endpoint_count,
                                workload::SplitStrategy strategy,
                                const CachePolicyFactory& factory,
                                std::int64_t series_stride,
                                const LatencyModel& latency,
                                const std::vector<std::uint32_t>* assignment) {
  DELTA_CHECK(endpoint_count > 0);
  DELTA_CHECK(factory != nullptr);
  DELTA_CHECK(assignment == nullptr ||
              assignment->size() == trace.queries.size());
  const auto start = std::chrono::steady_clock::now();

  // ---- assemble the node graph: one repository, N cache endpoints ----
  net::LoopbackTransport transport;
  core::ServerNode server{&trace, &transport};
  std::vector<std::unique_ptr<core::CacheNode>> caches;
  std::vector<std::unique_ptr<core::CachePolicy>> policies;
  caches.reserve(endpoint_count);
  policies.reserve(endpoint_count);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    caches.push_back(std::make_unique<core::CacheNode>(
        &trace, &server, &transport, "cache-" + std::to_string(i)));
  }
  // Policies are built after every endpoint exists; offline policies
  // (SOptimal) emit their up-front load traffic here, inside the warm-up
  // window, exactly as in the single-cache runner.
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    policies.push_back(factory(*caches[i], i));
    DELTA_CHECK(policies.back() != nullptr);
  }

  const std::vector<std::uint32_t> computed_assignment =
      assignment == nullptr
          ? workload::assign_queries(trace, endpoint_count, strategy)
          : std::vector<std::uint32_t>{};
  const std::vector<std::uint32_t>& routing =
      assignment == nullptr ? computed_assignment : *assignment;

  MultiRunResult result;
  result.strategy = strategy;
  result.combined.policy_name = policies.front()->name();
  result.combined.warmup_end = trace.info.warmup_end_event;
  result.combined.series = util::CumulativeSeries{series_stride};
  result.per_endpoint.resize(endpoint_count);
  std::vector<const net::TrafficMeter*> meters;
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    RunResult& r = result.per_endpoint[i];
    r.policy_name = policies[i]->name();
    r.warmup_end = trace.info.warmup_end_event;
    r.series = util::CumulativeSeries{series_stride};
    meters.push_back(&caches[i]->meter());
  }
  const net::TrafficMeter& aggregate = transport.meter();

  // ---- warm-up boundary snapshots (combined + one per endpoint) ----
  std::array<Bytes, 3> combined_at_warmup{};
  std::vector<std::array<Bytes, 3>> endpoint_at_warmup(endpoint_count);
  bool warmup_captured = false;
  const auto capture_warmup = [&] {
    combined_at_warmup = mechanism_snapshot(aggregate);
    for (std::size_t i = 0; i < endpoint_count; ++i) {
      endpoint_at_warmup[i] = mechanism_snapshot(*meters[i]);
    }
    warmup_captured = true;
  };
  if (trace.info.warmup_end_event == 0) capture_warmup();

  // ---- replay the merged event sequence ----
  for (const workload::Event& event : trace.order) {
    const bool is_update = event.kind == workload::Event::Kind::kUpdate;
    const EventTime now =
        is_update
            ? trace.updates[static_cast<std::size_t>(event.index)].time
            : trace.queries[static_cast<std::size_t>(event.index)].time;
    // Snapshot the meters the moment the measurement window opens, before
    // this event's traffic.
    if (!warmup_captured && now >= trace.info.warmup_end_event) {
      capture_warmup();
    }

    if (is_update) {
      server.ingest_update(
          trace.updates[static_cast<std::size_t>(event.index)]);
    } else {
      const auto qi = static_cast<std::size_t>(event.index);
      const workload::Query& q = trace.queries[qi];
      const std::size_t e = routing[qi];
      DELTA_CHECK(e < endpoint_count);
      RunResult& r = result.per_endpoint[e];
      const core::QueryOutcome outcome = policies[e]->on_query(q);
      ++result.combined.queries;
      ++r.queries;
      double seconds = 0.0;
      switch (outcome.path) {
        case core::QueryOutcome::Path::kCacheFresh:
          ++result.combined.cache_fresh;
          ++r.cache_fresh;
          seconds = latency.local_exec_seconds;
          break;
        case core::QueryOutcome::Path::kCacheAfterUpdates:
          ++result.combined.cache_after_updates;
          ++r.cache_after_updates;
          seconds =
              latency.local_exec_seconds +
              caches[e]->link().transfer_seconds(outcome.max_update_bytes);
          break;
        case core::QueryOutcome::Path::kShipped:
          ++result.combined.shipped;
          ++r.shipped;
          seconds =
              latency.server_exec_seconds +
              caches[e]->link().transfer_seconds(outcome.result_bytes);
          break;
      }
      result.combined.objects_loaded += outcome.objects_loaded;
      r.objects_loaded += outcome.objects_loaded;
      if (now >= trace.info.warmup_end_event) {
        result.combined.postwarmup_latency.add(seconds);
        r.postwarmup_latency.add(seconds);
      }
    }
    result.combined.series.observe(now, aggregate.figure_total().as_double());
    for (std::size_t i = 0; i < endpoint_count; ++i) {
      result.per_endpoint[i].series.observe(
          now, meters[i]->figure_total().as_double());
    }
  }
  if (!warmup_captured) capture_warmup();  // warm-up spanned the whole run

  // ---- fold the meters into the results ----
  const auto finish = [](RunResult& r, const net::TrafficMeter& meter,
                         const std::array<Bytes, 3>& at_warmup) {
    r.series.finalize();
    r.total_traffic = meter.figure_total();
    const std::array<Bytes, 3> final_by = mechanism_snapshot(meter);
    for (std::size_t m = 0; m < 3; ++m) {
      r.postwarmup_by_mechanism[m] = final_by[m] - at_warmup[m];
      r.postwarmup_traffic += r.postwarmup_by_mechanism[m];
    }
    r.overhead_traffic = meter.total(net::Mechanism::kOverhead);
  };
  finish(result.combined, aggregate, combined_at_warmup);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    finish(result.per_endpoint[i], *meters[i], endpoint_at_warmup[i]);
  }

  result.combined.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace delta::sim
