#include "sim/multi_cache.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "net/transport.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace delta::sim {

namespace {

std::array<Bytes, 3> mechanism_snapshot(const net::TrafficMeter& meter) {
  return {meter.total(net::Mechanism::kQueryShip),
          meter.total(net::Mechanism::kUpdateShip),
          meter.total(net::Mechanism::kObjectLoad)};
}

// NOTE: mirrors sim/simulator.cpp's run_policy event semantics exactly;
// the N=1 byte-for-byte equivalence is pinned by MultiCacheSimTest — keep
// the two replay loops in lockstep. run_multi_parallel below replays the
// same semantics once more per worker and ParallelSimTest pins it to this
// engine bit-for-bit, so all three loops move together.
MultiRunResult run_multi_sequential(
    const workload::Trace& trace, std::size_t endpoint_count,
    workload::SplitStrategy strategy, const CachePolicyFactory& factory,
    std::int64_t series_stride, const LatencyModel& latency,
    const std::vector<std::uint32_t>& routing) {
  const auto start = std::chrono::steady_clock::now();

  // ---- assemble the node graph: one repository, N cache endpoints ----
  net::LoopbackTransport transport;
  core::ServerNode server{&trace, &transport};
  std::vector<std::unique_ptr<core::CacheNode>> caches;
  std::vector<std::unique_ptr<core::CachePolicy>> policies;
  caches.reserve(endpoint_count);
  policies.reserve(endpoint_count);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    caches.push_back(std::make_unique<core::CacheNode>(
        &trace, &server, &transport, "cache-" + std::to_string(i)));
  }
  // Policies are built after every endpoint exists; offline policies
  // (SOptimal) emit their up-front load traffic here, inside the warm-up
  // window, exactly as in the single-cache runner.
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    policies.push_back(factory(*caches[i], i));
    DELTA_CHECK(policies.back() != nullptr);
  }

  MultiRunResult result;
  result.strategy = strategy;
  result.combined.policy_name = policies.front()->name();
  result.combined.warmup_end = trace.info.warmup_end_event;
  result.combined.series = util::CumulativeSeries{series_stride};
  result.per_endpoint.resize(endpoint_count);
  std::vector<const net::TrafficMeter*> meters;
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    RunResult& r = result.per_endpoint[i];
    r.policy_name = policies[i]->name();
    r.warmup_end = trace.info.warmup_end_event;
    r.series = util::CumulativeSeries{series_stride};
    meters.push_back(&caches[i]->meter());
  }
  const net::TrafficMeter& aggregate = transport.meter();

  // ---- warm-up boundary snapshots (combined + one per endpoint) ----
  std::array<Bytes, 3> combined_at_warmup{};
  std::vector<std::array<Bytes, 3>> endpoint_at_warmup(endpoint_count);
  bool warmup_captured = false;
  const auto capture_warmup = [&] {
    combined_at_warmup = mechanism_snapshot(aggregate);
    for (std::size_t i = 0; i < endpoint_count; ++i) {
      endpoint_at_warmup[i] = mechanism_snapshot(*meters[i]);
    }
    warmup_captured = true;
  };
  if (trace.info.warmup_end_event == 0) capture_warmup();

  // ---- replay the merged event sequence ----
  for (const workload::Event& event : trace.order) {
    const bool is_update = event.kind == workload::Event::Kind::kUpdate;
    const EventTime now =
        is_update
            ? trace.updates[static_cast<std::size_t>(event.index)].time
            : trace.queries[static_cast<std::size_t>(event.index)].time;
    // Snapshot the meters the moment the measurement window opens, before
    // this event's traffic.
    if (!warmup_captured && now >= trace.info.warmup_end_event) {
      capture_warmup();
    }

    if (is_update) {
      server.ingest_update(
          trace.updates[static_cast<std::size_t>(event.index)]);
    } else {
      const auto qi = static_cast<std::size_t>(event.index);
      const workload::Query& q = trace.queries[qi];
      const std::size_t e = routing[qi];
      DELTA_CHECK(e < endpoint_count);
      RunResult& r = result.per_endpoint[e];
      const core::QueryOutcome outcome = policies[e]->on_query(q);
      ++result.combined.queries;
      ++r.queries;
      const double seconds = proxy_response_seconds(latency, outcome);
      switch (outcome.path) {
        case core::QueryOutcome::Path::kCacheFresh:
          ++result.combined.cache_fresh;
          ++r.cache_fresh;
          break;
        case core::QueryOutcome::Path::kCacheAfterUpdates:
          ++result.combined.cache_after_updates;
          ++r.cache_after_updates;
          break;
        case core::QueryOutcome::Path::kShipped:
          ++result.combined.shipped;
          ++r.shipped;
          break;
      }
      result.combined.objects_loaded += outcome.objects_loaded;
      r.objects_loaded += outcome.objects_loaded;
      if (now >= trace.info.warmup_end_event) {
        result.combined.postwarmup_latency.add(seconds);
        r.postwarmup_latency.add(seconds);
      }
    }
    result.combined.series.observe(now, aggregate.figure_total().as_double());
    for (std::size_t i = 0; i < endpoint_count; ++i) {
      result.per_endpoint[i].series.observe(
          now, meters[i]->figure_total().as_double());
    }
  }
  if (!warmup_captured) capture_warmup();  // warm-up spanned the whole run

  // ---- fold the meters into the results ----
  const auto finish = [](RunResult& r, const net::TrafficMeter& meter,
                         const std::array<Bytes, 3>& at_warmup) {
    r.series.finalize();
    r.total_traffic = meter.figure_total();
    const std::array<Bytes, 3> final_by = mechanism_snapshot(meter);
    for (std::size_t m = 0; m < 3; ++m) {
      r.postwarmup_by_mechanism[m] = final_by[m] - at_warmup[m];
      r.postwarmup_traffic += r.postwarmup_by_mechanism[m];
    }
    r.overhead_traffic = meter.total(net::Mechanism::kOverhead);
  };
  finish(result.combined, aggregate, combined_at_warmup);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    finish(result.per_endpoint[i], *meters[i], endpoint_at_warmup[i]);
  }

  result.combined.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

// ------------------------------------------------------ parallel engine

/// One endpoint's shard of a parallel run: a full replica of the node graph
/// (its own transport, repository, cache, policy) plus everything the merge
/// step needs. All mutable state here is confined to one worker thread
/// between the launch and join barriers.
struct EndpointWorker {
  net::LoopbackTransport transport;
  std::unique_ptr<core::ServerNode> server;
  std::unique_ptr<core::CacheNode> cache;
  std::unique_ptr<core::CachePolicy> policy;

  RunResult result;  // the per-endpoint view, identical to sequential's
  /// This replica's whole-transport figure series (stride assigned in
  /// replay_shard); every message of the sequential run lands in exactly
  /// one replica, so summing these pointwise reconstructs the sequential
  /// combined series.
  util::CumulativeSeries aggregate_series;
  std::array<Bytes, 3> aggregate_at_warmup{};
  std::array<Bytes, 3> aggregate_final{};
  Bytes aggregate_total;
  Bytes aggregate_overhead;
  /// (position in trace.order, seconds) per post-warm-up query, recorded in
  /// deterministic mode so the merge can re-add them in global event order.
  std::vector<std::pair<std::int64_t, double>> latency_samples;
};

/// Replays the full merged event sequence against `w`'s replica, executing
/// only the queries routed to endpoint `self`. Updates are applied to the
/// replica repository at the same sequence points as in the sequential
/// engine, so object sizes — the only cross-endpoint state — evolve
/// identically.
void replay_shard(const workload::Trace& trace,
                  const std::vector<std::uint32_t>& routing, std::size_t self,
                  std::int64_t series_stride, const LatencyModel& latency,
                  bool deterministic, EndpointWorker& w) {
  RunResult& r = w.result;
  r.policy_name = w.policy->name();
  r.warmup_end = trace.info.warmup_end_event;
  r.series = util::CumulativeSeries{series_stride};
  w.aggregate_series = util::CumulativeSeries{series_stride};
  const net::TrafficMeter& endpoint_meter = w.cache->meter();
  const net::TrafficMeter& aggregate = w.transport.meter();

  std::array<Bytes, 3> endpoint_at_warmup{};
  bool warmup_captured = false;
  const auto capture_warmup = [&] {
    endpoint_at_warmup = mechanism_snapshot(endpoint_meter);
    w.aggregate_at_warmup = mechanism_snapshot(aggregate);
    warmup_captured = true;
  };
  if (trace.info.warmup_end_event == 0) capture_warmup();

  std::int64_t order_pos = 0;
  for (const workload::Event& event : trace.order) {
    const bool is_update = event.kind == workload::Event::Kind::kUpdate;
    const EventTime now =
        is_update
            ? trace.updates[static_cast<std::size_t>(event.index)].time
            : trace.queries[static_cast<std::size_t>(event.index)].time;
    if (!warmup_captured && now >= trace.info.warmup_end_event) {
      capture_warmup();
    }

    if (is_update) {
      w.server->ingest_update(
          trace.updates[static_cast<std::size_t>(event.index)]);
    } else {
      const auto qi = static_cast<std::size_t>(event.index);
      if (routing[qi] == self) {
        const workload::Query& q = trace.queries[qi];
        const core::QueryOutcome outcome = w.policy->on_query(q);
        ++r.queries;
        const double seconds = proxy_response_seconds(latency, outcome);
        switch (outcome.path) {
          case core::QueryOutcome::Path::kCacheFresh:
            ++r.cache_fresh;
            break;
          case core::QueryOutcome::Path::kCacheAfterUpdates:
            ++r.cache_after_updates;
            break;
          case core::QueryOutcome::Path::kShipped:
            ++r.shipped;
            break;
        }
        r.objects_loaded += outcome.objects_loaded;
        if (now >= trace.info.warmup_end_event) {
          r.postwarmup_latency.add(seconds);
          if (deterministic) w.latency_samples.emplace_back(order_pos, seconds);
        }
      }
    }
    r.series.observe(now, endpoint_meter.figure_total().as_double());
    w.aggregate_series.observe(now, aggregate.figure_total().as_double());
    ++order_pos;
  }
  if (!warmup_captured) capture_warmup();  // warm-up spanned the whole run

  r.series.finalize();
  r.total_traffic = endpoint_meter.figure_total();
  const std::array<Bytes, 3> final_by = mechanism_snapshot(endpoint_meter);
  for (std::size_t m = 0; m < 3; ++m) {
    r.postwarmup_by_mechanism[m] = final_by[m] - endpoint_at_warmup[m];
    r.postwarmup_traffic += r.postwarmup_by_mechanism[m];
  }
  r.overhead_traffic = endpoint_meter.total(net::Mechanism::kOverhead);

  w.aggregate_series.finalize();
  w.aggregate_final = mechanism_snapshot(aggregate);
  w.aggregate_total = aggregate.figure_total();
  w.aggregate_overhead = aggregate.total(net::Mechanism::kOverhead);
}

MultiRunResult run_multi_parallel(
    const workload::Trace& trace, std::size_t endpoint_count,
    workload::SplitStrategy strategy, const CachePolicyFactory& factory,
    std::int64_t series_stride, const LatencyModel& latency,
    const std::vector<std::uint32_t>& routing, std::size_t num_threads,
    bool deterministic, bool work_stealing) {
  const auto start = std::chrono::steady_clock::now();
  // A worker silently skips queries routed out of range, so validate the
  // whole split up front (the sequential engine checks per event).
  for (const std::uint32_t e : routing) DELTA_CHECK(e < endpoint_count);

  // ---- assemble one replica node graph per endpoint (calling thread) ----
  std::vector<std::unique_ptr<EndpointWorker>> workers;
  workers.reserve(endpoint_count);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    auto w = std::make_unique<EndpointWorker>();
    w->server = std::make_unique<core::ServerNode>(&trace, &w->transport);
    w->cache = std::make_unique<core::CacheNode>(
        &trace, w->server.get(), &w->transport, "cache-" + std::to_string(i));
    workers.push_back(std::move(w));
  }
  // Factories run on the calling thread in endpoint order — the same
  // invocation contract as the sequential engine, so factories need no
  // thread-safety. Offline policies emit their preload traffic here, into
  // their replica's transport, inside the warm-up window.
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    workers[i]->policy = factory(*workers[i]->cache, i);
    DELTA_CHECK(workers[i]->policy != nullptr);
  }

  // ---- replay all shards on the pool. With stealing on, shards are
  // LPT-packed onto the workers by exact routed-query counts and a drained
  // worker steals a straggler's pending shard — never affects results,
  // since stealing only moves WHICH thread replays a shard. ----
  const auto replay_one = [&](std::size_t i) {
    replay_shard(trace, routing, i, series_stride, latency, deterministic,
                 *workers[i]);
  };
  if (!work_stealing || endpoint_count <= 1) {
    util::parallel_for(endpoint_count, num_threads, replay_one);
  } else {
    std::vector<double> weights(endpoint_count, 0.0);
    for (const std::uint32_t e : routing) weights[e] += 1.0;
    util::parallel_for_dynamic(
        endpoint_count,
        util::lpt_assignment(weights, std::min(num_threads, endpoint_count)),
        replay_one);
  }

  // ---- deterministic merge, in endpoint order ----
  MultiRunResult result;
  result.strategy = strategy;
  result.per_endpoint.reserve(endpoint_count);
  RunResult& c = result.combined;
  c.policy_name = workers.front()->policy->name();
  c.warmup_end = trace.info.warmup_end_event;
  c.series = util::CumulativeSeries{series_stride};

  std::array<Bytes, 3> at_warmup{};
  std::array<Bytes, 3> final_by{};
  for (const auto& w : workers) {
    const RunResult& r = w->result;
    c.queries += r.queries;
    c.cache_fresh += r.cache_fresh;
    c.cache_after_updates += r.cache_after_updates;
    c.shipped += r.shipped;
    c.objects_loaded += r.objects_loaded;
    c.total_traffic += w->aggregate_total;
    c.overhead_traffic += w->aggregate_overhead;
    for (std::size_t m = 0; m < 3; ++m) {
      at_warmup[m] += w->aggregate_at_warmup[m];
      final_by[m] += w->aggregate_final[m];
    }
  }
  for (std::size_t m = 0; m < 3; ++m) {
    c.postwarmup_by_mechanism[m] = final_by[m] - at_warmup[m];
    c.postwarmup_traffic += c.postwarmup_by_mechanism[m];
  }

  // Combined cumulative series: every worker observed every event, and the
  // series' sampling decisions depend only on the (identical) sequence of
  // event indices, so all per-worker aggregate series carry points at the
  // same indices. Their values are integer byte counts (exact in a double
  // far past any realistic traffic total), so the pointwise sum equals the
  // sequential engine's interleaved accumulation bit-for-bit.
  if (!workers.empty() && !workers.front()->aggregate_series.points().empty()) {
    const auto& reference = workers.front()->aggregate_series.points();
    for (std::size_t k = 0; k < reference.size(); ++k) {
      double sum = 0.0;
      for (const auto& w : workers) {
        const auto& points = w->aggregate_series.points();
        DELTA_CHECK(points.size() == reference.size() &&
                    points[k].event_index == reference[k].event_index);
        sum += points[k].value;
      }
      c.series.observe(reference[k].event_index, sum);
    }
    c.series.finalize();
  }

  if (deterministic) {
    // Re-add the latency samples in merged-event order: StreamingStats is
    // order-sensitive in its low bits, and the sequential engine added them
    // interleaved across endpoints.
    std::vector<std::pair<std::int64_t, double>> samples;
    std::size_t total = 0;
    for (const auto& w : workers) total += w->latency_samples.size();
    samples.reserve(total);
    for (auto& w : workers) {
      samples.insert(samples.end(), w->latency_samples.begin(),
                     w->latency_samples.end());
      w->latency_samples.clear();
    }
    // Event positions are unique (each query event belongs to exactly one
    // shard), so this order is total.
    std::sort(samples.begin(), samples.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& sample : samples) {
      c.postwarmup_latency.add(sample.second);
    }
  } else {
    for (const auto& w : workers) {
      c.postwarmup_latency.merge(w->result.postwarmup_latency);
    }
  }

  for (auto& w : workers) result.per_endpoint.push_back(std::move(w->result));

  result.combined.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace

MultiRunResult run_policy_multi(const workload::Trace& trace,
                                std::size_t endpoint_count,
                                workload::SplitStrategy strategy,
                                const CachePolicyFactory& factory,
                                std::int64_t series_stride,
                                const LatencyModel& latency,
                                const std::vector<std::uint32_t>* assignment,
                                const ParallelOptions& parallel) {
  DELTA_CHECK(endpoint_count > 0);
  DELTA_CHECK(factory != nullptr);
  DELTA_CHECK(assignment == nullptr ||
              assignment->size() == trace.queries.size());
  const std::vector<std::uint32_t> computed_assignment =
      assignment == nullptr
          ? workload::assign_queries(trace, endpoint_count, strategy)
          : std::vector<std::uint32_t>{};
  const std::vector<std::uint32_t>& routing =
      assignment == nullptr ? computed_assignment : *assignment;

  // Resolve the auto thread count exactly once: the engine choice and the
  // worker-pool size must come from the same number.
  const std::size_t threads = parallel.num_threads == 0
                                  ? util::ThreadPool::hardware_threads()
                                  : parallel.num_threads;
  if (threads <= 1) {
    return run_multi_sequential(trace, endpoint_count, strategy, factory,
                                series_stride, latency, routing);
  }
  return run_multi_parallel(trace, endpoint_count, strategy, factory,
                            series_stride, latency, routing, threads,
                            parallel.deterministic, parallel.work_stealing);
}

}  // namespace delta::sim
