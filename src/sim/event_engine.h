// Event-driven simulation engine: replays the trace through a
// DelayedTransport on a discrete-event clock, so the quantities the
// synchronous engines could only estimate analytically are *measured*:
//
//   * response time — each query's simulated completion time (request and
//     reply transfers, serialization, queueing behind earlier sends on the
//     same link) plus the execution surcharge for the path taken;
//   * server-uplink contention — how long messages leaving the repository
//     waited behind each other (DelayedTransport uplink stats);
//   * update staleness — the gap between an update's server-side ingest and
//     the delivery of its invalidation notice at each subscribed cache.
//
// The engine replays trace events at their arrival times (EventTime ticks
// scaled by seconds_per_event) in a closed loop per event: a query is
// dispatched when the clock reaches its arrival (or as soon as the engine
// is free again) and runs to completion, pumping message deliveries —
// including other endpoints' invalidations in flight — while it waits.
//
// Over zero-latency links (EventEngineOptions defaults) every delivery
// lands at its send instant and the replay degenerates to the synchronous
// engines' semantics: sim_golden_test pins the event engine to the same
// golden tables byte-for-byte. The replay loop mirrors sim/simulator.cpp
// and sim/multi_cache.cpp (see the lockstep NOTE there).
#pragma once

#include <vector>

#include "net/delayed_transport.h"
#include "net/link_model.h"
#include "sim/multi_cache.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/trace.h"
#include "workload/trace_split.h"

namespace delta::sim {

struct EventEngineOptions {
  /// Simulated seconds per trace EventTime tick: the event at merged
  /// position t arrives at t * seconds_per_event on the sim clock.
  double seconds_per_event = 0.001;
  /// Link model for every server<->cache path not listed in cache_links.
  /// The zero-latency default reproduces the synchronous engines exactly.
  net::LinkModel default_link = net::LinkModel::zero_latency();
  /// Per-endpoint duplex server<->cache link, indexed like the endpoints;
  /// endpoints past the end use default_link. This is the scenario axis the
  /// synchronous engines cannot express: heterogeneous WAN paths.
  std::vector<net::LinkModel> cache_links;
  /// Execution-time surcharges per query path — the same LatencyModel the
  /// synchronous engines use, so cross-engine response comparisons share
  /// one definition. Its proxy_link is ignored here: the transfer
  /// component it prices analytically is simulated on the links instead.
  LatencyModel exec;
  std::int64_t series_stride = 2000;
};

/// Simulated-latency yardsticks for one cache endpoint.
struct EndpointEventYardsticks {
  /// Post-warm-up simulated response times of this endpoint's queries.
  util::StreamingStats response_seconds;
  /// Ingest -> invalidation-delivered gap for notices this cache received.
  util::StreamingStats staleness_seconds;
};

struct EventRunResult {
  /// The same per-endpoint + combined accounting the synchronous engines
  /// produce (RunResult::postwarmup_latency holds the *simulated* response
  /// times here, not the analytic proxy).
  MultiRunResult replay;

  // ---- measured yardsticks (what the sync engines assumed) ----

  /// Combined post-warm-up simulated response times; the sketch holds every
  /// sample for exact percentiles.
  util::StreamingStats response_seconds;
  util::QuantileSketch response_sketch;
  /// How long each query waited for the engine to be free after its arrival
  /// (closed-loop backlog; included in the response samples).
  util::StreamingStats dispatch_lag_seconds;
  /// Combined ingest -> invalidation-delivered gaps.
  util::StreamingStats staleness_seconds;
  std::vector<EndpointEventYardsticks> per_endpoint;
  /// Egress contention at the repository: serialization occupancy and
  /// queueing of all messages the server sent.
  net::UplinkStats server_uplink;

  double sim_duration_seconds = 0.0;
  std::int64_t delivered_messages = 0;

  [[nodiscard]] double response_p50() const {
    return response_sketch.quantile(0.50);
  }
  [[nodiscard]] double response_p99() const {
    return response_sketch.quantile(0.99);
  }
};

/// Replays the trace through N cache endpoints sharing one repository over
/// a latency-aware transport. Argument contract matches run_policy_multi:
/// `assignment` (indexed like Trace::queries) overrides the `strategy`
/// split when given. Deterministic: repeated runs produce identical
/// results (single-threaded discrete-event schedule with stable ordering).
EventRunResult run_policy_event(
    const workload::Trace& trace, std::size_t endpoint_count,
    workload::SplitStrategy strategy, const CachePolicyFactory& factory,
    const EventEngineOptions& options = EventEngineOptions{},
    const std::vector<std::uint32_t>* assignment = nullptr);

}  // namespace delta::sim
