#include "sim/event_engine.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <string>

#include "core/cache_node.h"
#include "core/server_node.h"
#include "util/check.h"
#include "util/event_queue.h"

namespace delta::sim {

namespace {

std::array<Bytes, 3> mechanism_snapshot(const net::TrafficMeter& meter) {
  return {meter.total(net::Mechanism::kQueryShip),
          meter.total(net::Mechanism::kUpdateShip),
          meter.total(net::Mechanism::kObjectLoad)};
}

}  // namespace

// NOTE: this loop replays the same event semantics as sim/simulator.cpp's
// run_policy and sim/multi_cache.cpp's two engines (warm-up capture,
// counter accounting, series observation) — the four loops move together.
// Over zero-latency links SimGoldenTest.EventEngine... pins this engine to
// the same golden tables as the other three.
EventRunResult run_policy_event(const workload::Trace& trace,
                                std::size_t endpoint_count,
                                workload::SplitStrategy strategy,
                                const CachePolicyFactory& factory,
                                const EventEngineOptions& options,
                                const std::vector<std::uint32_t>* assignment) {
  const auto start = std::chrono::steady_clock::now();
  DELTA_CHECK(endpoint_count > 0);
  DELTA_CHECK(factory != nullptr);
  DELTA_CHECK(options.seconds_per_event >= 0.0);
  DELTA_CHECK(assignment == nullptr ||
              assignment->size() == trace.queries.size());
  const std::vector<std::uint32_t> computed_assignment =
      assignment == nullptr
          ? workload::assign_queries(trace, endpoint_count, strategy)
          : std::vector<std::uint32_t>{};
  const std::vector<std::uint32_t>& routing =
      assignment == nullptr ? computed_assignment : *assignment;

  // ---- assemble the node graph over the latency-aware transport ----
  util::EventQueue events;
  net::DelayedTransport transport{&events, options.default_link};
  core::ServerNode server{&trace, &transport};
  std::vector<std::unique_ptr<core::CacheNode>> caches;
  caches.reserve(endpoint_count);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    caches.push_back(std::make_unique<core::CacheNode>(
        &trace, &server, &transport, "cache-" + std::to_string(i)));
    const net::LinkModel link = i < options.cache_links.size()
                                    ? options.cache_links[i]
                                    : options.default_link;
    transport.set_duplex_link(server.name(), caches.back()->name(), link);
  }

  EventRunResult out;
  out.per_endpoint.resize(endpoint_count);

  // Staleness observer: invalidation notices delivered to cache endpoints
  // carry their send (= ingest) and delivery stamps. Cache->server eviction
  // notices reuse the message kind, so filter by destination.
  std::vector<std::size_t> endpoint_of_transport_slot;
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    const std::size_t slot = transport.endpoint_slot(caches[i]->name());
    if (slot >= endpoint_of_transport_slot.size()) {
      endpoint_of_transport_slot.resize(slot + 1,
                                        static_cast<std::size_t>(-1));
    }
    endpoint_of_transport_slot[slot] = i;
  }
  transport.set_delivery_observer([&](const net::Message& m,
                                      std::size_t slot) {
    if (m.kind != net::MessageKind::kInvalidation) return;
    if (slot >= endpoint_of_transport_slot.size()) return;
    const std::size_t endpoint = endpoint_of_transport_slot[slot];
    if (endpoint == static_cast<std::size_t>(-1)) return;
    // Post-warm-up only, like every other measured yardstick: server
    // invalidations carry the update's trace time in sent_at, the same
    // boundary the response samples gate on.
    if (m.sent_at < trace.info.warmup_end_event) return;
    const double gap = m.sim_delivered_at - m.sim_sent_at;
    out.staleness_seconds.add(gap);
    out.per_endpoint[endpoint].staleness_seconds.add(gap);
  });

  // Policies are built after every endpoint and link exists; offline
  // policies (SOptimal) emit their up-front load traffic here — their sync
  // façades pump the queue, so the loads complete (and are metered) inside
  // the warm-up window even over slow links.
  std::vector<std::unique_ptr<core::CachePolicy>> policies;
  policies.reserve(endpoint_count);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    policies.push_back(factory(*caches[i], i));
    DELTA_CHECK(policies.back() != nullptr);
  }
  events.run_until_idle();  // flush preload stragglers (eviction notices)

  MultiRunResult& replay = out.replay;
  replay.strategy = strategy;
  replay.combined.policy_name = policies.front()->name();
  replay.combined.warmup_end = trace.info.warmup_end_event;
  replay.combined.series = util::CumulativeSeries{options.series_stride};
  replay.per_endpoint.resize(endpoint_count);
  std::vector<const net::TrafficMeter*> meters;
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    RunResult& r = replay.per_endpoint[i];
    r.policy_name = policies[i]->name();
    r.warmup_end = trace.info.warmup_end_event;
    r.series = util::CumulativeSeries{options.series_stride};
    meters.push_back(&caches[i]->meter());
  }
  const net::TrafficMeter& aggregate = transport.meter();

  // ---- warm-up boundary snapshots (combined + one per endpoint) ----
  std::array<Bytes, 3> combined_at_warmup{};
  std::vector<std::array<Bytes, 3>> endpoint_at_warmup(endpoint_count);
  bool warmup_captured = false;
  const auto capture_warmup = [&] {
    combined_at_warmup = mechanism_snapshot(aggregate);
    for (std::size_t i = 0; i < endpoint_count; ++i) {
      endpoint_at_warmup[i] = mechanism_snapshot(*meters[i]);
    }
    warmup_captured = true;
  };
  if (trace.info.warmup_end_event == 0) capture_warmup();

  // ---- replay the merged event sequence by arrival time ----
  for (const workload::Event& event : trace.order) {
    const bool is_update = event.kind == workload::Event::Kind::kUpdate;
    const EventTime now =
        is_update
            ? trace.updates[static_cast<std::size_t>(event.index)].time
            : trace.queries[static_cast<std::size_t>(event.index)].time;
    const double arrival =
        static_cast<double>(now) * options.seconds_per_event;
    // Deliver everything due up to this arrival, then move the clock to it
    // (messages still in flight are delivered — and metered — later, so
    // the boundary snapshot below only sees traffic that has landed).
    events.advance_until(arrival);
    if (!warmup_captured && now >= trace.info.warmup_end_event) {
      capture_warmup();
    }

    if (is_update) {
      server.ingest_update(
          trace.updates[static_cast<std::size_t>(event.index)]);
      // Invalidation notices due immediately (zero-latency links) are
      // delivered before the next event, as in the synchronous engines.
      events.run_ready();
    } else {
      const auto qi = static_cast<std::size_t>(event.index);
      const workload::Query& q = trace.queries[qi];
      const std::size_t e = routing[qi];
      DELTA_CHECK(e < endpoint_count);
      RunResult& r = replay.per_endpoint[e];
      // Closed loop: the query dispatches once the clock reaches its
      // arrival (or as soon as the engine finished the previous event) and
      // runs to completion; its synchronous cache calls pump the event
      // queue, advancing the clock over every transfer they wait for.
      const double dispatched = events.now();
      const core::QueryOutcome outcome = policies[e]->on_query(q);
      const double completed = events.now();
      events.run_ready();
      ++replay.combined.queries;
      ++r.queries;
      double exec_seconds = 0.0;
      switch (outcome.path) {
        case core::QueryOutcome::Path::kCacheFresh:
          ++replay.combined.cache_fresh;
          ++r.cache_fresh;
          exec_seconds = options.exec.local_exec_seconds;
          break;
        case core::QueryOutcome::Path::kCacheAfterUpdates:
          ++replay.combined.cache_after_updates;
          ++r.cache_after_updates;
          exec_seconds = options.exec.local_exec_seconds;
          break;
        case core::QueryOutcome::Path::kShipped:
          ++replay.combined.shipped;
          ++r.shipped;
          exec_seconds = options.exec.server_exec_seconds;
          break;
      }
      replay.combined.objects_loaded += outcome.objects_loaded;
      r.objects_loaded += outcome.objects_loaded;
      const double lag = dispatched - arrival;
      const double response = lag + (completed - dispatched) + exec_seconds;
      if (now >= trace.info.warmup_end_event) {
        replay.combined.postwarmup_latency.add(response);
        r.postwarmup_latency.add(response);
        out.response_seconds.add(response);
        out.response_sketch.add(response);
        out.dispatch_lag_seconds.add(lag);
        out.per_endpoint[e].response_seconds.add(response);
      }
    }
    replay.combined.series.observe(now, aggregate.figure_total().as_double());
    for (std::size_t i = 0; i < endpoint_count; ++i) {
      replay.per_endpoint[i].series.observe(
          now, meters[i]->figure_total().as_double());
    }
  }
  // Deliver (and meter) everything still in flight before the final reads.
  events.run_until_idle();
  if (!warmup_captured) capture_warmup();  // warm-up spanned the whole run

  // ---- fold the meters into the results ----
  const auto finish = [](RunResult& r, const net::TrafficMeter& meter,
                         const std::array<Bytes, 3>& at_warmup) {
    r.series.finalize();
    r.total_traffic = meter.figure_total();
    const std::array<Bytes, 3> final_by = mechanism_snapshot(meter);
    for (std::size_t m = 0; m < 3; ++m) {
      r.postwarmup_by_mechanism[m] = final_by[m] - at_warmup[m];
      r.postwarmup_traffic += r.postwarmup_by_mechanism[m];
    }
    r.overhead_traffic = meter.total(net::Mechanism::kOverhead);
  };
  finish(replay.combined, aggregate, combined_at_warmup);
  for (std::size_t i = 0; i < endpoint_count; ++i) {
    finish(replay.per_endpoint[i], *meters[i], endpoint_at_warmup[i]);
  }

  out.server_uplink =
      transport.uplink_stats(transport.endpoint_slot(server.name()));
  out.sim_duration_seconds = events.now();
  out.delivered_messages = transport.delivered_count();
  replay.combined.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace delta::sim
