// The discrete-event driver: replays a trace's merged query/update sequence
// through a DeltaSystem + CachePolicy pair and collects the measurements
// every figure plots — cumulative network traffic (total and per
// mechanism), decision counts, and the response-time proxy.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/delta_system.h"
#include "core/policy.h"
#include "net/link_model.h"
#include "util/stats.h"
#include "util/timeseries.h"
#include "workload/trace.h"

namespace delta::sim {

struct RunResult {
  std::string policy_name;

  /// Figure traffic (query ship + update ship + object load), whole run.
  Bytes total_traffic;
  /// Traffic accumulated after the warm-up boundary — what the paper's
  /// figures report.
  Bytes postwarmup_traffic;
  std::array<Bytes, 3> postwarmup_by_mechanism{};  // ship / update / load
  Bytes overhead_traffic;  // headers + control chatter (not in figures)

  /// Cumulative figure traffic along the whole event sequence.
  util::CumulativeSeries series{2000};
  EventTime warmup_end = 0;

  std::int64_t queries = 0;
  std::int64_t cache_fresh = 0;
  std::int64_t cache_after_updates = 0;
  std::int64_t shipped = 0;
  std::int64_t objects_loaded = 0;

  /// Response-time proxy over post-warm-up queries (seconds).
  util::StreamingStats postwarmup_latency;

  double wall_seconds = 0.0;

  /// Post-warm-up cumulative traffic at an event index (rebased to zero at
  /// the warm-up boundary).
  [[nodiscard]] double postwarmup_value_at(EventTime t) const {
    return series.value_at(t) - series.value_at(warmup_end);
  }
};

struct LatencyModel {
  double local_exec_seconds = 0.05;
  double server_exec_seconds = 0.10;
  /// Link the synchronous engines' analytic response-time proxy is priced
  /// against. The event-driven engine (sim/event_engine.h) ignores this and
  /// *simulates* transfer/queueing time on its configured per-link models.
  net::LinkModel proxy_link = net::LinkModel{};
};

/// The synchronous engines' analytic response-time proxy: execution time for
/// the path taken plus the closed-form transfer time of the bytes it moved.
/// This is the one remaining transfer_seconds yardstick call site — the
/// event-driven engine replaces the estimate with simulated latencies.
[[nodiscard]] double proxy_response_seconds(const LatencyModel& latency,
                                            const core::QueryOutcome& outcome);

/// Replays the trace through the policy. The system must have been freshly
/// constructed from the same trace (server sizes start at the initial
/// state). When `latency_sink` is non-null every post-warm-up per-query
/// latency sample is also appended to it (the perf-trajectory bench uses
/// this for percentiles; RunResult itself only carries streaming moments).
RunResult run_policy(const workload::Trace& trace,
                     core::DeltaSystem& system, core::CachePolicy& policy,
                     std::int64_t series_stride = 2000,
                     const LatencyModel& latency = LatencyModel{},
                     util::QuantileSketch* latency_sink = nullptr);

}  // namespace delta::sim
