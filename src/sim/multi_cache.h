// Multi-endpoint simulation: one ServerNode (shared repository) serving N
// CacheNode endpoints, each driven by its own policy instance, over a
// single metered transport.
//
// The trace's merged event sequence is replayed once: updates go to the
// repository (which fans invalidations out per subscription), queries are
// routed to endpoints by a workload::SplitStrategy. Results come back at
// two granularities — a RunResult per endpoint (from that endpoint's
// transport meter) and a combined RunResult computed exactly like the
// single-cache sim::run_policy, so a run with one endpoint reproduces the
// single-cache numbers byte-for-byte and per-endpoint figures always sum to
// the combined figure.
#pragma once

#include <functional>
#include <memory>

#include "core/cache_node.h"
#include "core/policy.h"
#include "core/server_node.h"
#include "sim/simulator.h"
#include "workload/trace.h"
#include "workload/trace_split.h"

namespace delta::sim {

struct MultiRunResult {
  workload::SplitStrategy strategy = workload::SplitStrategy::kRoundRobin;
  /// One result per cache endpoint: counters/latency over the queries
  /// routed to it, traffic from its per-endpoint meter.
  std::vector<RunResult> per_endpoint;
  /// Aggregate view, same semantics as the single-cache run_policy result.
  RunResult combined;
};

/// Builds the policy driving endpoint `index` (already attached to `cache`).
/// The factory is always invoked on the calling thread, in endpoint order —
/// it never needs to be thread-safe, even in parallel runs.
using CachePolicyFactory = std::function<std::unique_ptr<core::CachePolicy>(
    core::CacheNode& cache, std::size_t index)>;

/// How the replay executes.
///
/// With num_threads <= 1 the engine is the original sequential one: a single
/// shared LoopbackTransport/ServerNode drives all N endpoints in merged
/// event order on the calling thread.
///
/// With num_threads > 1 each endpoint becomes an independent worker holding
/// its own transport + repository replica + cache, and the workers replay
/// the event sequence concurrently on a util::ThreadPool. This is sound
/// because the only cross-endpoint state in the sequential run is the
/// repository object sizes, which depend on updates alone — and every worker
/// applies every update at the same point of the sequence — while each
/// cache's registration row, meter, and policy are confined to its worker.
/// A merge step then folds the per-endpoint results in endpoint order;
/// byte totals are exact integer sums, so they are independent of worker
/// timing by construction.
///
/// `deterministic` (default) additionally makes the merged *combined* view
/// bit-identical to the sequential engine's: workers record their
/// post-warm-up latency samples tagged with the global event position and
/// the merge re-adds them in merged-event order, and the combined cumulative
/// series is reconstructed as the pointwise sum of the per-worker aggregate
/// series (which sample at identical event indices). Setting it to false
/// skips the per-query sample buffers and folds the latency stats with
/// StreamingStats::merge instead — still repeatable run-to-run, but the
/// combined latency mean/variance may differ from the sequential engine in
/// the last floating-point bits.
struct ParallelOptions {
  /// 0 = one thread per hardware core; 1 = sequential engine; >1 = worker
  /// pool of min(num_threads, endpoint_count) threads.
  std::size_t num_threads = 1;
  bool deterministic = true;
  /// T>1 scheduling: LPT-pack the partitions onto the workers by their
  /// exact routed-query counts and let a worker that drains its own queue
  /// steal a straggler's pending partition (util::parallel_for_dynamic).
  /// Never affects results — stealing only moves WHICH thread replays a
  /// partition, and the partition stays the atomic determinism unit — so
  /// it defaults on; off falls back to the FIFO parallel_for pool.
  bool work_stealing = true;
};

/// Replays the trace through N cache endpoints sharing one repository.
/// `assignment`, when given, is the query split to route by (indexed like
/// Trace::queries, values < endpoint_count) — pass it when a policy also
/// needs the split (e.g. sharded SOptimal hindsight) so routing and policy
/// provably agree; null recomputes it from `strategy`.
/// `parallel` selects the execution engine; every engine/thread-count
/// combination yields the same RunResults (see ParallelOptions).
MultiRunResult run_policy_multi(
    const workload::Trace& trace, std::size_t endpoint_count,
    workload::SplitStrategy strategy, const CachePolicyFactory& factory,
    std::int64_t series_stride = 2000,
    const LatencyModel& latency = LatencyModel{},
    const std::vector<std::uint32_t>* assignment = nullptr,
    const ParallelOptions& parallel = ParallelOptions{});

}  // namespace delta::sim
