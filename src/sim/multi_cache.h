// Multi-endpoint simulation: one ServerNode (shared repository) serving N
// CacheNode endpoints, each driven by its own policy instance, over a
// single metered transport.
//
// The trace's merged event sequence is replayed once: updates go to the
// repository (which fans invalidations out per subscription), queries are
// routed to endpoints by a workload::SplitStrategy. Results come back at
// two granularities — a RunResult per endpoint (from that endpoint's
// transport meter) and a combined RunResult computed exactly like the
// single-cache sim::run_policy, so a run with one endpoint reproduces the
// single-cache numbers byte-for-byte and per-endpoint figures always sum to
// the combined figure.
#pragma once

#include <functional>
#include <memory>

#include "core/cache_node.h"
#include "core/policy.h"
#include "core/server_node.h"
#include "sim/simulator.h"
#include "workload/trace.h"
#include "workload/trace_split.h"

namespace delta::sim {

struct MultiRunResult {
  workload::SplitStrategy strategy = workload::SplitStrategy::kRoundRobin;
  /// One result per cache endpoint: counters/latency over the queries
  /// routed to it, traffic from its per-endpoint meter.
  std::vector<RunResult> per_endpoint;
  /// Aggregate view, same semantics as the single-cache run_policy result.
  RunResult combined;
};

/// Builds the policy driving endpoint `index` (already attached to `cache`).
using CachePolicyFactory = std::function<std::unique_ptr<core::CachePolicy>(
    core::CacheNode& cache, std::size_t index)>;

/// Replays the trace through N cache endpoints sharing one repository.
/// `assignment`, when given, is the query split to route by (indexed like
/// Trace::queries, values < endpoint_count) — pass it when a policy also
/// needs the split (e.g. sharded SOptimal hindsight) so routing and policy
/// provably agree; null recomputes it from `strategy`.
MultiRunResult run_policy_multi(
    const workload::Trace& trace, std::size_t endpoint_count,
    workload::SplitStrategy strategy, const CachePolicyFactory& factory,
    std::int64_t series_stride = 2000,
    const LatencyModel& latency = LatencyModel{},
    const std::vector<std::uint32_t>* assignment = nullptr);

}  // namespace delta::sim
