#include "htm/trixel.h"

#include <cmath>

#include "util/check.h"

namespace delta::htm {

namespace {

// The six cardinal directions of the HTM octahedron.
constexpr Vec3 kV0{0.0, 0.0, 1.0};    // north pole
constexpr Vec3 kV1{1.0, 0.0, 0.0};
constexpr Vec3 kV2{0.0, 1.0, 0.0};
constexpr Vec3 kV3{-1.0, 0.0, 0.0};
constexpr Vec3 kV4{0.0, -1.0, 0.0};
constexpr Vec3 kV5{0.0, 0.0, -1.0};   // south pole

// Standard root-trixel corner table (S0..S3, N0..N3).
constexpr std::array<std::array<Vec3, 3>, 8> kRoots{{
    {{kV1, kV5, kV2}},  // S0, id 8
    {{kV2, kV5, kV3}},  // S1, id 9
    {{kV3, kV5, kV4}},  // S2, id 10
    {{kV4, kV5, kV1}},  // S3, id 11
    {{kV1, kV0, kV4}},  // N0, id 12
    {{kV4, kV0, kV3}},  // N1, id 13
    {{kV3, kV0, kV2}},  // N2, id 14
    {{kV2, kV0, kV1}},  // N3, id 15
}};

// Inclusive side test with a tiny tolerance so points on shared edges are
// found in at least one sibling.
bool inside_triangle(const std::array<Vec3, 3>& v, const Vec3& p) {
  constexpr double kEps = -1e-12;
  return dot(cross(v[0], v[1]), p) >= kEps &&
         dot(cross(v[1], v[2]), p) >= kEps &&
         dot(cross(v[2], v[0]), p) >= kEps;
}

}  // namespace

int level_of(HtmId id) {
  DELTA_CHECK_MSG(id >= 8, "invalid HTM id " << id);
  int level = 0;
  while (id >= 32) {
    id /= 4;
    ++level;
  }
  DELTA_CHECK_MSG(id >= 8 && id < 16, "invalid HTM id");
  return level;
}

std::int64_t trixel_count_at_level(int level) {
  DELTA_CHECK(level >= 0 && level < 28);
  return 8LL << (2 * level);
}

HtmId first_id_at_level(int level) { return trixel_count_at_level(level); }

std::int64_t index_in_level(HtmId id) {
  return id - first_id_at_level(level_of(id));
}

HtmId id_from_index(int level, std::int64_t index) {
  DELTA_CHECK(index >= 0 && index < trixel_count_at_level(level));
  return first_id_at_level(level) + index;
}

HtmId ancestor_at_level(HtmId id, int ancestor_level) {
  const int level = level_of(id);
  DELTA_CHECK(ancestor_level >= 0 && ancestor_level <= level);
  for (int i = level; i > ancestor_level; --i) id /= 4;
  return id;
}

Trixel Trixel::root(int index) {
  DELTA_CHECK(index >= 0 && index < 8);
  return Trixel{static_cast<HtmId>(8 + index),
                kRoots[static_cast<std::size_t>(index)]};
}

Trixel Trixel::child(int i) const {
  DELTA_CHECK(i >= 0 && i < 4);
  const Vec3 w0 = midpoint_on_sphere(v_[1], v_[2]);
  const Vec3 w1 = midpoint_on_sphere(v_[0], v_[2]);
  const Vec3 w2 = midpoint_on_sphere(v_[0], v_[1]);
  switch (i) {
    case 0:
      return Trixel{child_of(id_, 0), {v_[0], w2, w1}};
    case 1:
      return Trixel{child_of(id_, 1), {v_[1], w0, w2}};
    case 2:
      return Trixel{child_of(id_, 2), {v_[2], w1, w0}};
    default:
      return Trixel{child_of(id_, 3), {w0, w1, w2}};
  }
}

Trixel Trixel::from_id(HtmId id) {
  const int level = level_of(id);
  // Decode the child-path digits from the top.
  std::array<int, 32> digits{};
  HtmId cursor = id;
  for (int i = level - 1; i >= 0; --i) {
    digits[static_cast<std::size_t>(i)] = static_cast<int>(cursor % 4);
    cursor /= 4;
  }
  Trixel t = root(static_cast<int>(cursor - 8));
  for (int i = 0; i < level; ++i) {
    t = t.child(digits[static_cast<std::size_t>(i)]);
  }
  return t;
}

bool Trixel::contains(const Vec3& p) const {
  return inside_triangle(v_, p);
}

Vec3 Trixel::center() const {
  return normalized(v_[0] + v_[1] + v_[2]);
}

double Trixel::bounding_radius() const {
  const Vec3 c = center();
  double r = 0.0;
  for (const auto& v : v_) r = std::max(r, angular_distance(c, v));
  return r;
}

double Trixel::area() const {
  // l'Huilier: tan(E/4) = sqrt(tan(s/2) tan((s-a)/2) tan((s-b)/2)
  // tan((s-c)/2)) with a,b,c the side arc lengths and s the semi-perimeter.
  const double a = angular_distance(v_[1], v_[2]);
  const double b = angular_distance(v_[0], v_[2]);
  const double c = angular_distance(v_[0], v_[1]);
  const double s = (a + b + c) / 2.0;
  const double t = std::tan(s / 2.0) * std::tan((s - a) / 2.0) *
                   std::tan((s - b) / 2.0) * std::tan((s - c) / 2.0);
  return 4.0 * std::atan(std::sqrt(std::max(t, 0.0)));
}

HtmId locate(const Vec3& p, int level) {
  const Vec3 unit = normalized(p);
  for (int r = 0; r < 8; ++r) {
    Trixel t = Trixel::root(r);
    if (!t.contains(unit)) continue;
    for (int l = 0; l < level; ++l) {
      bool descended = false;
      for (int c = 0; c < 4; ++c) {
        Trixel ch = t.child(c);
        if (ch.contains(unit)) {
          t = ch;
          descended = true;
          break;
        }
      }
      DELTA_CHECK_MSG(descended, "point escaped trixel during descent");
    }
    return t.id();
  }
  DELTA_CHECK_MSG(false, "point not located in any root trixel");
  return 0;  // unreachable
}

}  // namespace delta::htm
