#include "htm/partition_map.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace delta::htm {

namespace {

struct Candidate {
  double weight = 0.0;
  int level = 0;
  HtmId id = 0;
  friend bool operator<(const Candidate& a, const Candidate& b) {
    // Split shallowest (largest-area) partitions first — the paper's
    // partitions are "roughly equi-area" with the data skew coming from
    // density variation, not from adaptive area refinement. Within a level,
    // split the heaviest first; ties broken by id for determinism.
    if (a.level != b.level) return a.level > b.level;  // min level on top
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.id > b.id;
  }
};

}  // namespace

PartitionMap PartitionMap::build(int base_level,
                                 const std::vector<double>& base_weights,
                                 std::size_t target_count) {
  DELTA_CHECK(base_level >= 1 && base_level <= 12);
  const std::int64_t base_count = trixel_count_at_level(base_level);
  DELTA_CHECK_MSG(static_cast<std::int64_t>(base_weights.size()) == base_count,
                  "expected " << base_count << " base weights, got "
                              << base_weights.size());
  DELTA_CHECK(target_count >= 1);

  // Prefix sums for O(1) subtree weights: a trixel at level l covers the
  // contiguous base-index range of its descendants.
  std::vector<double> prefix(static_cast<std::size_t>(base_count) + 1, 0.0);
  for (std::int64_t i = 0; i < base_count; ++i) {
    DELTA_CHECK(base_weights[static_cast<std::size_t>(i)] >= 0.0);
    prefix[static_cast<std::size_t>(i + 1)] =
        prefix[static_cast<std::size_t>(i)] +
        base_weights[static_cast<std::size_t>(i)];
  }
  const HtmId base_first = first_id_at_level(base_level);
  const auto subtree_weight = [&](HtmId id) {
    const int depth = base_level - level_of(id);
    const HtmId lo = (id << (2 * depth)) - base_first;
    const HtmId hi = lo + (1LL << (2 * depth));
    return prefix[static_cast<std::size_t>(hi)] -
           prefix[static_cast<std::size_t>(lo)];
  };

  std::priority_queue<Candidate> heap;
  std::vector<HtmId> final_partitions;
  std::size_t non_empty = 0;
  for (int r = 0; r < 8; ++r) {
    const HtmId id = 8 + r;
    const double w = subtree_weight(id);
    if (w > 0.0) {
      heap.push({w, 0, id});
      ++non_empty;
    } else {
      final_partitions.push_back(id);  // empty: never split
    }
  }

  while (non_empty < target_count && !heap.empty()) {
    const Candidate top = heap.top();
    heap.pop();
    if (top.level >= base_level) {
      // Already at base granularity: retire it and split the next heaviest.
      final_partitions.push_back(top.id);
      continue;
    }
    --non_empty;
    for (int c = 0; c < 4; ++c) {
      const HtmId child = child_of(top.id, c);
      const double w = subtree_weight(child);
      if (w > 0.0) {
        heap.push({w, top.level + 1, child});
        ++non_empty;
      } else {
        final_partitions.push_back(child);
      }
    }
  }
  while (!heap.empty()) {
    final_partitions.push_back(heap.top().id);
    heap.pop();
  }
  std::sort(final_partitions.begin(), final_partitions.end(),
            [](HtmId a, HtmId b) {
              // Order by position on the base grid for stable object ids.
              const int la = level_of(a);
              const int lb = level_of(b);
              const HtmId pa = a << (2 * (24 - la));
              const HtmId pb = b << (2 * (24 - lb));
              return pa < pb;
            });

  PartitionMap map;
  map.base_level_ = base_level;
  map.partition_trixels_ = final_partitions;
  map.base_to_object_.assign(static_cast<std::size_t>(base_count), -1);
  map.partition_weights_.reserve(final_partitions.size());
  for (std::size_t oid = 0; oid < final_partitions.size(); ++oid) {
    const HtmId id = final_partitions[oid];
    const int depth = base_level - level_of(id);
    const HtmId lo = (id << (2 * depth)) - base_first;
    const HtmId hi = lo + (1LL << (2 * depth));
    for (HtmId i = lo; i < hi; ++i) {
      DELTA_CHECK_MSG(map.base_to_object_[static_cast<std::size_t>(i)] == -1,
                      "overlapping partitions");
      map.base_to_object_[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(oid);
    }
    const double w = subtree_weight(id);
    map.partition_weights_.push_back(w);
    if (w > 0.0) ++map.object_count_;
  }
  // Every base trixel must be owned.
  DELTA_CHECK(std::none_of(map.base_to_object_.begin(),
                           map.base_to_object_.end(),
                           [](std::int32_t o) { return o < 0; }));
  return map;
}

ObjectId PartitionMap::object_for_base_index(std::int64_t base_index) const {
  DELTA_CHECK(base_index >= 0 &&
              base_index < static_cast<std::int64_t>(base_to_object_.size()));
  return ObjectId{base_to_object_[static_cast<std::size_t>(base_index)]};
}

ObjectId PartitionMap::object_for_trixel(HtmId base_trixel) const {
  return object_for_base_index(index_in_level(base_trixel));
}

HtmId PartitionMap::partition_trixel(ObjectId id) const {
  DELTA_CHECK(id.valid() &&
              id.value() < static_cast<std::int64_t>(partition_trixels_.size()));
  return partition_trixels_[static_cast<std::size_t>(id.value())];
}

double PartitionMap::partition_weight(ObjectId id) const {
  DELTA_CHECK(id.valid() &&
              id.value() < static_cast<std::int64_t>(partition_weights_.size()));
  return partition_weights_[static_cast<std::size_t>(id.value())];
}

std::pair<std::int64_t, std::int64_t> PartitionMap::base_range(
    ObjectId id) const {
  const HtmId trixel = partition_trixel(id);
  const int depth = base_level_ - level_of(trixel);
  const HtmId base_first = first_id_at_level(base_level_);
  const std::int64_t lo = (trixel << (2 * depth)) - base_first;
  return {lo, lo + (1LL << (2 * depth))};
}

std::vector<ObjectId> PartitionMap::objects_for_region(
    const Region& region) const {
  const std::vector<HtmId> trixels = cover_region(region, base_level_);
  std::vector<ObjectId> out;
  out.reserve(trixels.size());
  for (const HtmId t : trixels) {
    out.push_back(object_for_trixel(t));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ObjectId PartitionMap::object_for_point(const Vec3& p) const {
  return object_for_trixel(locate(p, base_level_));
}

}  // namespace delta::htm
