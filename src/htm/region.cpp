#include "htm/region.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace delta::htm {

namespace {

/// Distance from `ra` to the interval [lo, hi] on the 360-degree circle,
/// in degrees. Zero when inside. Handles wrapped intervals (lo > hi).
double ra_interval_distance_deg(double ra, double lo, double hi) {
  const auto in = [&](double x) {
    if (lo <= hi) return x >= lo && x <= hi;
    return x >= lo || x <= hi;  // wrapped
  };
  if (in(ra)) return 0.0;
  const auto circ_dist = [](double a, double b) {
    const double d = std::fabs(a - b);
    return std::min(d, 360.0 - d);
  };
  return std::min(circ_dist(ra, lo), circ_dist(ra, hi));
}

}  // namespace

bool Cone::contains(const Vec3& p) const {
  return angular_distance(center, p) <= radius_rad;
}

double Cone::distance_to(const Vec3& p) const {
  return std::max(0.0, angular_distance(center, p) - radius_rad);
}

bool RaDecRect::contains(const Vec3& p) const {
  const RaDec rd = to_ra_dec(p);
  if (rd.dec_deg < dec_lo_deg || rd.dec_deg > dec_hi_deg) return false;
  return ra_interval_distance_deg(rd.ra_deg, ra_lo_deg, ra_hi_deg) == 0.0;
}

double RaDecRect::distance_to(const Vec3& p) const {
  const RaDec rd = to_ra_dec(p);
  const double ddec =
      rd.dec_deg < dec_lo_deg
          ? dec_lo_deg - rd.dec_deg
          : (rd.dec_deg > dec_hi_deg ? rd.dec_deg - dec_hi_deg : 0.0);
  const double dra = ra_interval_distance_deg(rd.ra_deg, ra_lo_deg, ra_hi_deg);
  // Scale the ra offset by cos(dec) to approximate great-circle distance;
  // shrink slightly so the bound stays a lower bound (covers err toward
  // inclusion rather than dropping objects a query actually touches).
  const double cosd = std::cos(degrees_to_radians(rd.dec_deg));
  const double approx_deg =
      std::sqrt(ddec * ddec + dra * cosd * (dra * cosd));
  return 0.9 * degrees_to_radians(approx_deg);
}

bool GreatCircleBand::contains(const Vec3& p) const {
  const double colat = angular_distance(pole, p);
  return std::fabs(colat - std::numbers::pi / 2.0) <= half_width_rad;
}

double GreatCircleBand::distance_to(const Vec3& p) const {
  const double colat = angular_distance(pole, p);
  return std::max(0.0,
                  std::fabs(colat - std::numbers::pi / 2.0) - half_width_rad);
}

bool region_contains(const Region& region, const Vec3& p) {
  return std::visit([&](const auto& r) { return r.contains(p); }, region);
}

double region_distance_to(const Region& region, const Vec3& p) {
  return std::visit([&](const auto& r) { return r.distance_to(p); }, region);
}

Vec3 region_anchor(const Region& region) {
  return std::visit(
      [](const auto& r) -> Vec3 {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, Cone>) {
          return normalized(r.center);
        } else if constexpr (std::is_same_v<T, RaDecRect>) {
          double ra_mid = 0.0;
          if (r.ra_lo_deg <= r.ra_hi_deg) {
            ra_mid = (r.ra_lo_deg + r.ra_hi_deg) / 2.0;
          } else {
            ra_mid = std::fmod((r.ra_lo_deg + r.ra_hi_deg + 360.0) / 2.0, 360.0);
          }
          return from_ra_dec(ra_mid, (r.dec_lo_deg + r.dec_hi_deg) / 2.0);
        } else {
          // Any point on the great circle: an arbitrary orthogonal direction.
          const Vec3 pole = normalized(r.pole);
          const Vec3 seed = std::fabs(pole.z) < 0.9 ? Vec3{0.0, 0.0, 1.0}
                                                    : Vec3{1.0, 0.0, 0.0};
          return normalized(cross(pole, seed));
        }
      },
      region);
}

}  // namespace delta::htm
