// Spherical query regions. Astronomy queries in the trace specify one of
// these shapes (§6.1: range/cone searches, spatial self-joins, great-circle
// scan chunks); the semantic framework maps each region to the set of data
// objects it touches via an HTM cover.
#pragma once

#include <variant>

#include "htm/vec3.h"

namespace delta::htm {

/// Spherical cap: all points within `radius_rad` of `center`.
struct Cone {
  Vec3 center{0.0, 0.0, 1.0};
  double radius_rad = 0.0;

  [[nodiscard]] bool contains(const Vec3& p) const;
  /// Lower bound on the angular distance from p to the region (0 inside).
  [[nodiscard]] double distance_to(const Vec3& p) const;
};

/// (ra, dec) box in degrees; ra wraps modulo 360 (ra_lo may exceed ra_hi).
struct RaDecRect {
  double ra_lo_deg = 0.0;
  double ra_hi_deg = 0.0;
  double dec_lo_deg = 0.0;
  double dec_hi_deg = 0.0;

  [[nodiscard]] bool contains(const Vec3& p) const;
  [[nodiscard]] double distance_to(const Vec3& p) const;
};

/// Band of half-width `half_width_rad` around the great circle whose pole is
/// `pole` — the footprint of a telescope scan along a great circle (§6.1).
struct GreatCircleBand {
  Vec3 pole{0.0, 0.0, 1.0};
  double half_width_rad = 0.0;

  [[nodiscard]] bool contains(const Vec3& p) const;
  [[nodiscard]] double distance_to(const Vec3& p) const;
};

using Region = std::variant<Cone, RaDecRect, GreatCircleBand>;

bool region_contains(const Region& region, const Vec3& p);
double region_distance_to(const Region& region, const Vec3& p);

/// Representative interior point (used for seeding covers and tests).
Vec3 region_anchor(const Region& region);

}  // namespace delta::htm
