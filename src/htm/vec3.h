// Unit vectors on the celestial sphere and (ra, dec) <-> Cartesian
// conversions. All angles at this layer are radians unless the name says
// degrees; SDSS-style coordinates (ra in [0, 360), dec in [-90, 90] degrees)
// convert at the boundary.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

namespace delta::htm {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend constexpr Vec3 operator+(const Vec3& a, const Vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(const Vec3& a, const Vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(const Vec3& a, double k) {
    return {a.x * k, a.y * k, a.z * k};
  }
  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

inline Vec3 normalized(const Vec3& a) {
  const double n = norm(a);
  return n > 0.0 ? Vec3{a.x / n, a.y / n, a.z / n} : Vec3{0.0, 0.0, 1.0};
}

inline Vec3 midpoint_on_sphere(const Vec3& a, const Vec3& b) {
  return normalized(a + b);
}

/// Angular separation in radians, numerically stable near 0 and pi.
inline double angular_distance(const Vec3& a, const Vec3& b) {
  return std::atan2(norm(cross(a, b)), dot(a, b));
}

constexpr double degrees_to_radians(double deg) {
  return deg * std::numbers::pi / 180.0;
}
constexpr double radians_to_degrees(double rad) {
  return rad * 180.0 / std::numbers::pi;
}

/// (ra, dec) in degrees -> unit vector.
inline Vec3 from_ra_dec(double ra_deg, double dec_deg) {
  const double ra = degrees_to_radians(ra_deg);
  const double dec = degrees_to_radians(dec_deg);
  const double cd = std::cos(dec);
  return {cd * std::cos(ra), cd * std::sin(ra), std::sin(dec)};
}

struct RaDec {
  double ra_deg = 0.0;   // [0, 360)
  double dec_deg = 0.0;  // [-90, 90]
};

/// Unit vector -> (ra, dec) in degrees.
inline RaDec to_ra_dec(const Vec3& v) {
  const double dec = std::asin(std::clamp(v.z, -1.0, 1.0));
  double ra = std::atan2(v.y, v.x);
  if (ra < 0.0) ra += 2.0 * std::numbers::pi;
  return {radians_to_degrees(ra), radians_to_degrees(dec)};
}

/// Minimum distance (radians) from point p to the great-circle arc (a, b).
/// Used by region/trixel intersection tests.
inline double distance_to_arc(const Vec3& p, const Vec3& a, const Vec3& b) {
  const Vec3 n = cross(a, b);
  const double nn = norm(n);
  if (nn < 1e-15) return angular_distance(p, a);  // degenerate arc
  const Vec3 plane_normal{n.x / nn, n.y / nn, n.z / nn};
  // Foot of p on the great circle through a, b.
  const Vec3 foot = normalized(p - plane_normal * dot(p, plane_normal));
  // The foot is on the arc iff it lies between a and b along the circle.
  const double arc_len = angular_distance(a, b);
  if (angular_distance(a, foot) <= arc_len &&
      angular_distance(foot, b) <= arc_len) {
    return angular_distance(p, foot);
  }
  return std::min(angular_distance(p, a), angular_distance(p, b));
}

}  // namespace delta::htm
