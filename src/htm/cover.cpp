#include "htm/cover.h"

#include <algorithm>

#include "util/check.h"

namespace delta::htm {

namespace {

thread_local std::int64_t t_nodes_visited = 0;

enum class Overlap { kOutside, kPartial, kInside };

Overlap classify(const Trixel& t, const Region& region) {
  const Vec3 c = t.center();
  const double r = t.bounding_radius();
  if (region_distance_to(region, c) > r) return Overlap::kOutside;
  // Inside when all corners and the center are contained. (Approximate:
  // boundary bulges are caught by the recursion below, and at worst a
  // boundary trixel is classified Partial, which is conservative.)
  if (region_contains(region, c) &&
      std::all_of(t.vertices().begin(), t.vertices().end(),
                  [&](const Vec3& v) { return region_contains(region, v); })) {
    return Overlap::kInside;
  }
  return Overlap::kPartial;
}

void descend(const Trixel& t, const Region& region, int target_level,
             std::vector<HtmId>& out) {
  ++t_nodes_visited;
  const Overlap o = classify(t, region);
  if (o == Overlap::kOutside) return;
  if (t.level() == target_level) {
    out.push_back(t.id());
    return;
  }
  if (o == Overlap::kInside) {
    // Whole subtree is inside: enumerate descendants arithmetically.
    const int depth = target_level - t.level();
    const HtmId first = t.id() << (2 * depth);
    const HtmId count = 1LL << (2 * depth);
    for (HtmId i = 0; i < count; ++i) out.push_back(first + i);
    return;
  }
  for (int c = 0; c < 4; ++c) descend(t.child(c), region, target_level, out);
}

}  // namespace

std::vector<HtmId> cover_region(const Region& region, int level) {
  DELTA_CHECK(level >= 0 && level <= 12);
  t_nodes_visited = 0;
  std::vector<HtmId> out;
  for (int r = 0; r < 8; ++r) {
    descend(Trixel::root(r), region, level, out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::int64_t last_cover_nodes_visited() { return t_nodes_visited; }

}  // namespace delta::htm
