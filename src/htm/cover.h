// Region -> trixel covers: the pre-processing step (§4 Discussion, §6.1)
// that maps a query's spatial specification to the set of data objects it
// accesses, B(q).
#pragma once

#include <vector>

#include "htm/region.h"
#include "htm/trixel.h"

namespace delta::htm {

/// Computes the trixels at `level` that (conservatively) intersect the
/// region. The cover errs toward inclusion: a trixel is included unless its
/// bounding circle provably misses the region, so B(q) never silently drops
/// an object the query touches.
///
/// Returned ids are sorted and unique.
std::vector<HtmId> cover_region(const Region& region, int level);

/// Statistics hook: number of trixel nodes visited by the last cover call
/// on this thread (micro-benchmark instrumentation).
std::int64_t last_cover_nodes_visited();

}  // namespace delta::htm
