// Hierarchical Triangular Mesh trixels (Kunszt, Szalay & Thakar 2001) — the
// quad-tree-on-the-sphere index the paper uses to partition the SDSS
// PhotoObj table into data objects (§6.1).
//
// Ids follow the standard HTM encoding: the eight root trixels are
// 8..15 (S0..S3 = 8..11, N0..N3 = 12..15) and child i of trixel t has id
// 4*t + i, so a level-L id lies in [8*4^L, 16*4^L).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "htm/vec3.h"

namespace delta::htm {

using HtmId = std::int64_t;

/// Level of an HTM id (0 for the eight roots). Requires a valid id (>= 8).
int level_of(HtmId id);

/// Number of trixels at a level: 8 * 4^level.
std::int64_t trixel_count_at_level(int level);

/// First id at a level: 8 * 4^level.
HtmId first_id_at_level(int level);

/// Zero-based index of an id within its level.
std::int64_t index_in_level(HtmId id);

/// Id from a zero-based index within a level.
HtmId id_from_index(int level, std::int64_t index);

constexpr HtmId parent_of(HtmId id) { return id / 4; }
constexpr HtmId child_of(HtmId id, int i) { return id * 4 + i; }

/// Ancestor of `id` at `ancestor_level` (<= level_of(id)).
HtmId ancestor_at_level(HtmId id, int ancestor_level);

/// A spherical triangle of the mesh with its three unit-vector corners.
class Trixel {
 public:
  /// Root trixel (index 0..7, i.e. id 8..15).
  static Trixel root(int index);

  /// Trixel for an arbitrary id (walks down from the root; O(level)).
  static Trixel from_id(HtmId id);

  [[nodiscard]] HtmId id() const { return id_; }
  [[nodiscard]] int level() const { return level_of(id_); }
  [[nodiscard]] const std::array<Vec3, 3>& vertices() const { return v_; }

  /// The i-th child (0..3) by the standard midpoint subdivision.
  [[nodiscard]] Trixel child(int i) const;

  /// True when the point (unit vector) lies inside this trixel.
  [[nodiscard]] bool contains(const Vec3& p) const;

  /// Centroid of the three corners, normalized; used as bounding-circle
  /// center.
  [[nodiscard]] Vec3 center() const;

  /// Angular radius (radians) of the bounding circle around center().
  [[nodiscard]] double bounding_radius() const;

  /// Solid angle (steradians) via l'Huilier's spherical excess.
  [[nodiscard]] double area() const;

 private:
  Trixel(HtmId id, const std::array<Vec3, 3>& v) : id_(id), v_(v) {}

  HtmId id_;
  std::array<Vec3, 3> v_;
};

/// Locates the level-`level` trixel containing point p. O(level).
HtmId locate(const Vec3& p, int level);

}  // namespace delta::htm
