// Density-adaptive partitioning of the sky into data objects.
//
// The paper partitions the 1 TB PhotoObj table with the HTM index into
// "roughly equi-area data objects" whose data content varies 50 MB–90 GB,
// and sweeps the granularity from 10 to 532 objects (Fig. 8b). We reproduce
// that with target-count splitting: starting from the 8 root trixels, the
// heaviest partition (by data density) is recursively quartered until the
// requested number of non-empty partitions exists. Partitions are whole
// trixels, so every base-level trixel maps to exactly one data object.
#pragma once

#include <cstdint>
#include <vector>

#include "htm/cover.h"
#include "htm/region.h"
#include "htm/trixel.h"
#include "util/types.h"

namespace delta::htm {

class PartitionMap {
 public:
  /// Builds a partition map over the `base_level` grid. `base_weights` holds
  /// one non-negative weight (data density) per base trixel, in
  /// index_in_level order. Splitting proceeds until at least `target_count`
  /// partitions carry positive weight (or no further split is possible).
  static PartitionMap build(int base_level,
                            const std::vector<double>& base_weights,
                            std::size_t target_count);

  [[nodiscard]] int base_level() const { return base_level_; }
  [[nodiscard]] std::int64_t base_trixel_count() const {
    return static_cast<std::int64_t>(base_to_object_.size());
  }

  /// Total number of partitions (including empty ones outside the survey
  /// footprint).
  [[nodiscard]] std::size_t partition_count() const {
    return partition_trixels_.size();
  }

  /// Number of partitions with positive weight — the paper's "object count"
  /// (it ignores partitions that are never queried).
  [[nodiscard]] std::size_t object_count() const { return object_count_; }

  [[nodiscard]] ObjectId object_for_base_index(std::int64_t base_index) const;
  [[nodiscard]] ObjectId object_for_trixel(HtmId base_trixel) const;

  /// Root trixel of a partition.
  [[nodiscard]] HtmId partition_trixel(ObjectId id) const;

  /// Sum of base weights within the partition.
  [[nodiscard]] double partition_weight(ObjectId id) const;

  [[nodiscard]] bool is_empty_partition(ObjectId id) const {
    return partition_weight(id) <= 0.0;
  }

  /// Range [lo, hi) of base-trixel indices belonging to the partition.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> base_range(
      ObjectId id) const;

  /// All partitions whose area intersects the region (sorted, unique).
  /// This is the semantic framework's q -> B(q) mapping.
  [[nodiscard]] std::vector<ObjectId> objects_for_region(
      const Region& region) const;

  /// Point -> owning partition.
  [[nodiscard]] ObjectId object_for_point(const Vec3& p) const;

 private:
  PartitionMap() = default;

  int base_level_ = 0;
  std::size_t object_count_ = 0;
  std::vector<HtmId> partition_trixels_;   // indexed by ObjectId
  std::vector<double> partition_weights_;  // indexed by ObjectId
  std::vector<std::int32_t> base_to_object_;
};

}  // namespace delta::htm
