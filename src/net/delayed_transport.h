// Latency-aware, non-blocking transport: sends schedule their delivery on a
// shared discrete-event queue instead of invoking the destination handler
// inline.
//
// Every directed (sender endpoint -> destination endpoint) pair is a link
// parameterized by a LinkModel. A message entering a link at time t:
//   departs at   max(t, link busy-until)        (FIFO: queue behind earlier
//                                                sends on the same link)
//   occupies the link for (payload+header)/bandwidth seconds
//                                               (serialization occupancy)
//   is delivered at depart + serialization + RTT/2.
// Delivery times are therefore nondecreasing per link, and the event
// queue's stable (time, seq) order makes the whole schedule deterministic.
//
// Accounting matches LoopbackTransport exactly — aggregate meter plus
// per-endpoint meters that partition it — but meters are charged at
// *delivery* time: traffic in flight is not yet counted, which is what the
// warm-up-boundary snapshot semantics of the engines require.
//
// Per-source uplink statistics (serialization busy time, queueing waits)
// expose the contention that the synchronous engines could only assume
// away; the event engine reads them for its server-uplink yardstick.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fault_plan.h"
#include "net/link_model.h"
#include "net/message.h"
#include "net/traffic_meter.h"
#include "net/transport.h"
#include "util/event_queue.h"

namespace delta::net {

/// Egress-side contention counters for one sender endpoint, aggregated
/// over all links it sources.
struct UplinkStats {
  std::int64_t sends = 0;
  /// Seconds the endpoint's links spent serializing messages.
  double busy_seconds = 0.0;
  /// Seconds messages waited behind earlier sends before departing.
  double total_queue_wait = 0.0;
  double max_queue_wait = 0.0;
};

class DelayedTransport final : public Transport {
 public:
  /// Called on every delivery, after metering, before the destination
  /// handler. The message carries its sim_sent_at/sim_delivered_at stamps —
  /// the event engine derives its staleness yardstick from them. A typed
  /// function pointer plus context, like every other per-delivery hook:
  /// the observer fires once per delivered message.
  using DeliveryObserver = void (*)(void* ctx, const Message& message,
                                    std::size_t destination_slot);

  /// The queue outlives the transport. Links default to `default_link`
  /// until configured individually.
  ///
  /// `aggregate_metering = false` drops the per-delivery aggregate-meter
  /// records (meter() then becomes a checked failure): by the partition
  /// invariant the aggregate is exactly the sum of the per-endpoint
  /// meters, so a caller that owns all endpoints (the event engine's
  /// replica shards) can derive it at its snapshot points instead of
  /// paying two extra meter records on every delivered message.
  explicit DelayedTransport(util::EventQueue* events,
                            LinkModel default_link = LinkModel{},
                            bool aggregate_metering = true);

  // ---- Transport interface ----

  std::size_t register_endpoint(const std::string& name,
                                MessageHandler handler) override;
  void send(const std::string& destination, const Message& message,
            Mechanism mechanism) override;
  [[nodiscard]] std::size_t endpoint_slot(
      const std::string& name) const override;
  void send_to(std::size_t destination_slot, const Message& message,
               Mechanism mechanism) override;
  void send_to(std::size_t destination_slot, Message& message,
               Mechanism mechanism) override;
  void send_call(std::size_t destination_slot, Message& message,
                 Mechanism mechanism) override;
  [[nodiscard]] bool synchronous() const override { return false; }
  void wait_until(WaitPredicate done, void* ctx) override;
  [[nodiscard]] util::EventQueue* events() override { return events_; }
  [[nodiscard]] double now() const override { return events_->now(); }
  /// Serialization backlog already queued on the directed link: how long a
  /// message sent now would wait before its own serialization starts
  /// (max(0, busy_until - now)). The congestion signal ServerNode's notice
  /// batching gates on.
  [[nodiscard]] double egress_backlog_seconds(
      std::size_t from_slot, std::size_t to_slot) const override;
  [[nodiscard]] const TrafficMeter& meter() const override {
    DELTA_CHECK_MSG(aggregate_metering_,
                    "aggregate metering disabled: derive totals from the "
                    "per-endpoint meters (they partition the aggregate)");
    return meter_;
  }
  TrafficMeter& meter() override {
    DELTA_CHECK_MSG(aggregate_metering_,
                    "aggregate metering disabled: derive totals from the "
                    "per-endpoint meters (they partition the aggregate)");
    return meter_;
  }
  [[nodiscard]] bool has_endpoint(const std::string& name) const override;
  [[nodiscard]] const TrafficMeter& endpoint_meter(
      const std::string& name) const override;
  [[nodiscard]] const TrafficMeter& endpoint_meter(
      std::size_t slot) const override;
  [[nodiscard]] std::vector<std::string> endpoint_names() const override;

  // ---- link configuration ----

  /// Configures the directed link `from` -> `to`. Both endpoints must be
  /// registered. Replacing a link keeps its busy-until horizon (the wire
  /// does not forget its backlog when re-parameterized).
  void set_link(const std::string& from, const std::string& to,
                LinkModel link);

  /// Configures both directions between `a` and `b` with the same model —
  /// the common duplex server<->cache path.
  void set_duplex_link(const std::string& a, const std::string& b,
                       LinkModel link);

  // ---- fault injection ----

  /// Installs (or replaces) the fault plan. Endpoint names the plan
  /// mentions but that are not registered are ignored until they register
  /// (the grid is re-resolved on growth). Installing a plan restarts every
  /// link's draw stream at sequence zero. A disabled plan — or one with no
  /// nonzero probability and no partition window — deactivates every fault
  /// hook, including the inline fast-path gate, so such a config is
  /// byte-identical to never having called this at all.
  void set_fault_plan(FaultPlan plan);
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }
  [[nodiscard]] bool faults_active() const { return faults_active_; }
  /// True when `slot`'s process is crashed at simulated instant `t`
  /// (some crash window of the installed plan covers t). False when no
  /// plan is active or the endpoint has no crash schedule.
  [[nodiscard]] bool endpoint_down(std::size_t slot, double t) const {
    if (slot >= crash_windows_.size() || crash_windows_[slot] == nullptr) {
      return false;
    }
    for (const FaultWindow& w : *crash_windows_[slot]) {
      if (w.covers(t)) return true;
    }
    return false;
  }

  // ---- simulation-side instrumentation ----

  /// Observes every delivered message.
  void set_delivery_observer(DeliveryObserver observer, void* ctx);
  /// Observes only deliveries of `kind` — other kinds skip even the
  /// observer call (the engine's staleness probe watches invalidations,
  /// a small fraction of the message stream).
  void set_delivery_observer(DeliveryObserver observer, void* ctx,
                             MessageKind kind);

  [[nodiscard]] const UplinkStats& uplink_stats(std::size_t slot) const;
  [[nodiscard]] std::int64_t delivered_count() const { return delivered_; }
  /// Messages scheduled but not yet delivered.
  [[nodiscard]] std::int64_t in_flight() const { return in_flight_; }

 private:
  struct Endpoint {
    std::string name;
    MessageHandler handler;
    TrafficMeter meter;
  };

  struct Link {
    LinkModel model;
    util::SimTime busy_until = 0.0;
  };

  /// Sender slot for link keying: messages whose sender is not a
  /// registered endpoint (tests injecting raw traffic) share one
  /// "external" source.
  static constexpr std::size_t kExternalSource =
      static_cast<std::size_t>(-1);

  /// A scheduled-but-undelivered message, pooled so each send's event
  /// record is just {trampoline, this, pool index} — scheduling a delivery
  /// never allocates once the pool is warm.
  struct InFlight {
    Message message;
    std::size_t destination_slot = 0;
    Mechanism mechanism = Mechanism::kOverhead;
  };

  [[nodiscard]] std::size_t resolve_sender(const Message& message) const;
  /// Row in the dense link grid for a sender slot (external senders share
  /// row 0).
  [[nodiscard]] std::size_t link_row(std::size_t from) const {
    return from == kExternalSource ? 0 : from + 1;
  }
  [[nodiscard]] Link& link_between(std::size_t from, std::size_t to) {
    return link_grid_[link_row(from) * grid_cols_ + to];
  }
  [[nodiscard]] const Link& link_between(std::size_t from,
                                         std::size_t to) const {
    return link_grid_[link_row(from) * grid_cols_ + to];
  }

  /// Send/arrival instants of one transfer. Computing them runs the link
  /// state machine (FIFO depart, serialization occupancy, uplink stats) —
  /// call exactly once per message.
  struct LinkTiming {
    util::SimTime sent_at = 0.0;
    util::SimTime deliver_at = 0.0;
    std::size_t sender_slot = kExternalSource;
  };
  [[nodiscard]] LinkTiming plan_transfer(const Message& message,
                                         std::size_t destination_slot);

  /// Per-directed-link fault state, indexed like link_grid_. `seq` is the
  /// link's message sequence counter — the sole per-run state the draws
  /// depend on, preserved across grid growth so a link's stream position
  /// never depends on when later endpoints registered.
  struct LinkFaultState {
    LinkFaults faults;
    const std::vector<FaultWindow>* windows = nullptr;  // into plan_
    std::uint64_t key = 0;
    std::uint64_t seq = 0;
  };

  /// The fate apply_link_faults hands back for one sent message.
  struct FaultDecision {
    bool deliver = true;
    bool duplicate = false;
  };

  /// Draws this message's fate from its link's stream: partition windows
  /// and drops kill it (serialization is already paid — the sender cannot
  /// know the wire ate it), reorder pushes deliver_at forward, duplicate
  /// asks the caller to schedule a second flight with the same timing (the
  /// original delivers first by event order). Advances the link's seq.
  [[nodiscard]] FaultDecision apply_link_faults(std::size_t destination_slot,
                                                LinkTiming& timing);
  void rebuild_fault_grid(const std::vector<LinkFaultState>& old_grid,
                          std::size_t old_cols);

  /// True when the queue holds nothing that would execute before an event
  /// at `deliver_at` — the guard under which delivering inline (after
  /// fast-forwarding the clock) is indistinguishable from a trip through
  /// the queue. Strict: a pending event at exactly `deliver_at` was
  /// scheduled earlier, so it must run first.
  /// Faults force every message through the queue: a dropped or delayed
  /// reply must NOT short-circuit past the fault draw's consequences, and
  /// keeping one schedule shape keeps the chaos runs bit-identical across
  /// thread counts.
  [[nodiscard]] bool can_deliver_inline(util::SimTime deliver_at) {
    return !faults_active_ && events_->next_time() > deliver_at;
  }

  void schedule_delivery(std::size_t destination_slot, const Message& message,
                         Mechanism mechanism);
  /// Inline (fast-forwarded clock) delivery of `message`, stamped in
  /// place, when can_deliver_inline allows; returns false when the event
  /// queue must carry the message instead. `request_window` opens the
  /// one-shot reply window across the dispatch (the send_call case).
  bool deliver_inline(std::size_t destination_slot, Message& message,
                      Mechanism mechanism, const LinkTiming& timing,
                      bool request_window);
  void schedule_flight(std::size_t destination_slot, const Message& message,
                       Mechanism mechanism, const LinkTiming& timing);
  void deliver_pooled(std::uint32_t flight_index);
  void deliver(std::size_t destination_slot, const Message& message,
               Mechanism mechanism);

  void grow_link_grid();

  util::EventQueue* events_;
  LinkModel default_link_;
  bool aggregate_metering_ = true;
  /// Deque so endpoint meters stay at stable addresses as later endpoints
  /// register (same contract as LoopbackTransport).
  std::deque<Endpoint> endpoints_;
  /// Cached endpoints_.size(): the per-send slot checks must not pay the
  /// deque's iterator arithmetic.
  std::size_t endpoint_count_ = 0;
  /// Uplink stats live outside Endpoint in a flat vector: plan_transfer
  /// touches them once per sent message, and deque indexing costs an
  /// integer division per access.
  std::vector<UplinkStats> uplink_;
  std::unordered_map<std::string, std::size_t> index_;
  /// Dense per-directed-pair link state, (endpoints + 1) rows (row 0 =
  /// external senders) by `grid_cols_` destination columns: the per-send
  /// link lookup is one multiply-add instead of a hash probe. Rebuilt
  /// (preserving busy horizons) when an endpoint registers.
  std::vector<Link> link_grid_;
  std::size_t grid_cols_ = 0;
  FaultPlan plan_;
  /// Parallel to link_grid_; empty while no fault is active.
  std::vector<LinkFaultState> fault_grid_;
  /// Per-endpoint crash windows (into plan_.crashes), indexed by endpoint
  /// slot; nullptr = the endpoint never crashes. Empty while no fault is
  /// active. Name-resolved alongside the fault grid so registration order
  /// cannot matter.
  std::vector<const std::vector<FaultWindow>*> crash_windows_;
  FaultStats fault_stats_;
  bool faults_active_ = false;
  std::vector<InFlight> flight_pool_;
  std::vector<std::uint32_t> flight_free_;
  TrafficMeter meter_;
  DeliveryObserver observer_ = nullptr;
  void* observer_ctx_ = nullptr;
  /// Kind filter for the observer; negative = observe all kinds.
  std::int16_t observer_kind_ = -1;
  /// One-shot flag raised while a send_call request is being handled: the
  /// first send inside that window is the blocked caller's reply and may
  /// take the same inline fast path.
  bool reply_window_ = false;
  /// True while a send_call request dispatch is on the stack. The inline
  /// fast path is exact only while the handled request triggers at most
  /// ONE further send (the reply): a second send would be planned at the
  /// fast-forwarded clock instead of the request's arrival instant, so
  /// plan_transfer fails loudly on it (see the check there).
  bool inline_dispatch_ = false;
  std::int64_t delivered_ = 0;
  std::int64_t in_flight_ = 0;
};

}  // namespace delta::net
