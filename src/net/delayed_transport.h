// Latency-aware, non-blocking transport: sends schedule their delivery on a
// shared discrete-event queue instead of invoking the destination handler
// inline.
//
// Every directed (sender endpoint -> destination endpoint) pair is a link
// parameterized by a LinkModel. A message entering a link at time t:
//   departs at   max(t, link busy-until)        (FIFO: queue behind earlier
//                                                sends on the same link)
//   occupies the link for (payload+header)/bandwidth seconds
//                                               (serialization occupancy)
//   is delivered at depart + serialization + RTT/2.
// Delivery times are therefore nondecreasing per link, and the event
// queue's stable (time, seq) order makes the whole schedule deterministic.
//
// Accounting matches LoopbackTransport exactly — aggregate meter plus
// per-endpoint meters that partition it — but meters are charged at
// *delivery* time: traffic in flight is not yet counted, which is what the
// warm-up-boundary snapshot semantics of the engines require.
//
// Per-source uplink statistics (serialization busy time, queueing waits)
// expose the contention that the synchronous engines could only assume
// away; the event engine reads them for its server-uplink yardstick.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link_model.h"
#include "net/message.h"
#include "net/traffic_meter.h"
#include "net/transport.h"
#include "util/event_queue.h"
#include "util/flat_map.h"

namespace delta::net {

/// Egress-side contention counters for one sender endpoint, aggregated
/// over all links it sources.
struct UplinkStats {
  std::int64_t sends = 0;
  /// Seconds the endpoint's links spent serializing messages.
  double busy_seconds = 0.0;
  /// Seconds messages waited behind earlier sends before departing.
  double total_queue_wait = 0.0;
  double max_queue_wait = 0.0;
};

class DelayedTransport final : public Transport {
 public:
  /// Called on every delivery, after metering, before the destination
  /// handler. The message carries its sim_sent_at/sim_delivered_at stamps —
  /// the event engine derives its staleness yardstick from them.
  using DeliveryObserver =
      std::function<void(const Message&, std::size_t destination_slot)>;

  /// The queue outlives the transport. Links default to `default_link`
  /// until configured individually.
  explicit DelayedTransport(util::EventQueue* events,
                            LinkModel default_link = LinkModel{});

  // ---- Transport interface ----

  std::size_t register_endpoint(const std::string& name,
                                MessageHandler handler) override;
  void send(const std::string& destination, const Message& message,
            Mechanism mechanism) override;
  [[nodiscard]] std::size_t endpoint_slot(
      const std::string& name) const override;
  void send_to(std::size_t destination_slot, const Message& message,
               Mechanism mechanism) override;
  [[nodiscard]] bool synchronous() const override { return false; }
  void wait_until(const std::function<bool()>& done) override;
  [[nodiscard]] const TrafficMeter& meter() const override { return meter_; }
  TrafficMeter& meter() override { return meter_; }
  [[nodiscard]] bool has_endpoint(const std::string& name) const override;
  [[nodiscard]] const TrafficMeter& endpoint_meter(
      const std::string& name) const override;
  [[nodiscard]] const TrafficMeter& endpoint_meter(
      std::size_t slot) const override;
  [[nodiscard]] std::vector<std::string> endpoint_names() const override;

  // ---- link configuration ----

  /// Configures the directed link `from` -> `to`. Both endpoints must be
  /// registered. Replacing a link keeps its busy-until horizon (the wire
  /// does not forget its backlog when re-parameterized).
  void set_link(const std::string& from, const std::string& to,
                LinkModel link);

  /// Configures both directions between `a` and `b` with the same model —
  /// the common duplex server<->cache path.
  void set_duplex_link(const std::string& a, const std::string& b,
                       LinkModel link);

  // ---- simulation-side instrumentation ----

  void set_delivery_observer(DeliveryObserver observer);

  [[nodiscard]] const UplinkStats& uplink_stats(std::size_t slot) const;
  [[nodiscard]] std::int64_t delivered_count() const { return delivered_; }
  /// Messages scheduled but not yet delivered.
  [[nodiscard]] std::int64_t in_flight() const { return in_flight_; }

 private:
  struct Endpoint {
    std::string name;
    MessageHandler handler;
    TrafficMeter meter;
    UplinkStats uplink;
  };

  struct Link {
    LinkModel model;
    util::SimTime busy_until = 0.0;
  };

  /// Sender slot for link keying: messages whose sender is not a
  /// registered endpoint (tests injecting raw traffic) share one
  /// "external" source.
  static constexpr std::size_t kExternalSource =
      static_cast<std::size_t>(-1);

  /// A scheduled-but-undelivered message, pooled so each send's event-
  /// queue closure captures only {this, pool index} — small enough for
  /// std::function's inline buffer, so scheduling allocates nothing once
  /// the pool is warm.
  struct InFlight {
    Message message;
    std::size_t destination_slot = 0;
    Mechanism mechanism = Mechanism::kOverhead;
  };

  [[nodiscard]] static std::uint64_t link_key(std::size_t from,
                                              std::size_t to);
  [[nodiscard]] std::size_t resolve_sender(const Message& message) const;
  [[nodiscard]] Link& link_between(std::size_t from, std::size_t to);
  void schedule_delivery(std::size_t destination_slot, const Message& message,
                         Mechanism mechanism);
  void deliver_pooled(std::uint32_t flight_index);
  void deliver(std::size_t destination_slot, const Message& message,
               Mechanism mechanism);

  util::EventQueue* events_;
  LinkModel default_link_;
  /// Deque so endpoint meters stay at stable addresses as later endpoints
  /// register (same contract as LoopbackTransport).
  std::deque<Endpoint> endpoints_;
  std::unordered_map<std::string, std::size_t> index_;
  util::FlatMap<std::uint64_t, Link> links_;
  std::vector<InFlight> flight_pool_;
  std::vector<std::uint32_t> flight_free_;
  TrafficMeter meter_;
  DeliveryObserver observer_;
  std::int64_t delivered_ = 0;
  std::int64_t in_flight_ = 0;
};

}  // namespace delta::net
