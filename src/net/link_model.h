// Wide-area link latency model.
//
// The paper minimizes traffic, noting that reduced traffic "naturally
// decreases response times" and that delayed queries can be helped by
// preshipping (§4 Discussion). This model converts message sizes to transfer
// times so the preshipping extension and the latency metrics have a concrete
// response-time proxy: latency = RTT + bytes / bandwidth (linear scaling,
// valid for transfers much larger than a frame, per the TCP assumption the
// paper cites).
#pragma once

#include "util/types.h"

namespace delta::net {

class LinkModel {
 public:
  /// Defaults approximate a 2010-era well-provisioned WAN path:
  /// 1 Gbit/s and 40 ms RTT.
  explicit LinkModel(double bandwidth_bytes_per_sec = 125e6,
                     double rtt_seconds = 0.040);

  /// Seconds to complete a transfer of the given size (one round trip plus
  /// serialization).
  [[nodiscard]] double transfer_seconds(Bytes size) const;

  [[nodiscard]] double bandwidth_bytes_per_sec() const { return bandwidth_; }
  [[nodiscard]] double rtt_seconds() const { return rtt_; }

 private:
  double bandwidth_;
  double rtt_;
};

}  // namespace delta::net
