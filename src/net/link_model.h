// Per-link bandwidth/latency parameterization.
//
// The paper minimizes traffic, noting that reduced traffic "naturally
// decreases response times" and that delayed queries can be helped by
// preshipping (§4 Discussion). LinkModel carries the two parameters of a
// directed network path — bandwidth and round-trip time — and is how
// DelayedTransport links are configured: a message entering a link occupies
// it for serialization_seconds (so back-to-back sends queue behind each
// other) and lands one_way_seconds of propagation later. The event-driven
// engine therefore *simulates* latency, staleness and uplink contention
// per message instead of assuming them.
//
// transfer_seconds — the legacy closed-form RTT + bytes/bandwidth proxy —
// is retained only for the synchronous engines' comparable response-time
// yardstick (sim::proxy_response_seconds); new code should configure links
// and read the simulated timestamps instead.
#pragma once

#include "util/check.h"
#include "util/types.h"

namespace delta::net {

class LinkModel {
 public:
  /// Defaults approximate a 2010-era well-provisioned WAN path:
  /// 1 Gbit/s and 40 ms RTT.
  explicit LinkModel(double bandwidth_bytes_per_sec = 125e6,
                     double rtt_seconds = 0.040);

  /// An idealized link: infinite bandwidth, zero RTT. Over such links the
  /// event-driven engine degenerates to synchronous delivery order (the
  /// golden-equivalence configuration).
  [[nodiscard]] static LinkModel zero_latency();

  /// Seconds the link is occupied serializing `size` bytes
  /// (bytes/bandwidth). Inline multiply by the cached reciprocal: this
  /// runs once per scheduled message on the event-engine hot path.
  [[nodiscard]] double serialization_seconds(Bytes size) const {
    DELTA_DCHECK(size.count() >= 0);
    return size.as_double() * inv_bandwidth_;
  }

  /// One-way propagation delay (RTT/2).
  [[nodiscard]] double one_way_seconds() const { return rtt_ / 2.0; }

  /// Legacy analytic proxy: seconds to complete a transfer of the given
  /// size as one round trip plus serialization (linear scaling, valid for
  /// transfers much larger than a frame, per the TCP assumption the paper
  /// cites). Kept for the synchronous engines' response-time yardstick.
  [[nodiscard]] double transfer_seconds(Bytes size) const {
    DELTA_DCHECK(size.count() >= 0);
    return rtt_ + size.as_double() * inv_bandwidth_;
  }

  [[nodiscard]] double bandwidth_bytes_per_sec() const { return bandwidth_; }
  [[nodiscard]] double rtt_seconds() const { return rtt_; }

 private:
  double bandwidth_;
  /// 1/bandwidth (0.0 for an infinite-bandwidth zero-latency link).
  double inv_bandwidth_;
  double rtt_;
};

}  // namespace delta::net
