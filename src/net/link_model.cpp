#include "net/link_model.h"

#include <limits>

#include "util/check.h"

namespace delta::net {

LinkModel::LinkModel(double bandwidth_bytes_per_sec, double rtt_seconds)
    : bandwidth_(bandwidth_bytes_per_sec),
      inv_bandwidth_(1.0 / bandwidth_bytes_per_sec),
      rtt_(rtt_seconds) {
  DELTA_CHECK(bandwidth_ > 0.0);
  DELTA_CHECK(rtt_ >= 0.0);
}

LinkModel LinkModel::zero_latency() {
  // 1/inf == 0.0: serialization collapses to exactly zero seconds.
  return LinkModel{std::numeric_limits<double>::infinity(), 0.0};
}

}  // namespace delta::net
