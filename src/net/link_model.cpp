#include "net/link_model.h"

#include <limits>

#include "util/check.h"

namespace delta::net {

LinkModel::LinkModel(double bandwidth_bytes_per_sec, double rtt_seconds)
    : bandwidth_(bandwidth_bytes_per_sec), rtt_(rtt_seconds) {
  DELTA_CHECK(bandwidth_ > 0.0);
  DELTA_CHECK(rtt_ >= 0.0);
}

LinkModel LinkModel::zero_latency() {
  return LinkModel{std::numeric_limits<double>::infinity(), 0.0};
}

double LinkModel::serialization_seconds(Bytes size) const {
  DELTA_CHECK(size.count() >= 0);
  return size.as_double() / bandwidth_;
}

double LinkModel::transfer_seconds(Bytes size) const {
  DELTA_CHECK(size.count() >= 0);
  return rtt_ + size.as_double() / bandwidth_;
}

}  // namespace delta::net
