// Typed middleware messages exchanged between the cache and the repository.
//
// Delta's three data-communication mechanisms (§3) map onto message kinds:
//   * query shipping   — kQueryRequest to the server, kQueryResult back
//   * update shipping  — kUpdateShip from server to cache
//   * object loading   — kLoadRequest to the server, kLoadData back
// plus kInvalidation (server tells the cache an object went stale) and
// kControl for protocol chatter. Network-traffic accounting is by payload
// bytes, matching the paper's bytes-proportional cost model; header overhead
// is metered separately so the figure numbers stay comparable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace delta::net {

enum class MessageKind : std::uint8_t {
  kQueryRequest,
  kQueryResult,
  kUpdateShip,
  kLoadRequest,
  kLoadData,
  kInvalidation,
  kControl,
  /// Admission control: the server refuses an overloaded kQueryRequest.
  /// Echoes the request's correlation id; the cache completes the request
  /// with zero payload and accounts it as shed (core/protocol.h).
  kQueryReject,
  /// Partition recovery: a cache that detected a healed partition asks the
  /// server to replay the invalidation notices it may have missed.
  /// subject_id carries the cache's new registration epoch.
  kResyncRequest,
  /// Resync reply: missed invalidation ids ride in batched_invalidations
  /// (with their ingest instants in batched_ingest_at), like a congestion
  /// batch — recovery data is metered as overhead, never figure traffic.
  kResyncData,
  /// Crash-stop recovery (ISSUE 10): a restarted cache — or a cache that
  /// detected a restarted server through its incarnation stamp — rebuilds
  /// the server's registration row. batched_invalidations carries the
  /// cache's resident object ids (its re-registration set), subject_id its
  /// fresh registration epoch; the server resets the row to exactly that
  /// set and answers with the same kResyncData ledger replay a partition
  /// heal would get.
  kRecoverRequest,
};

[[nodiscard]] constexpr const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kQueryRequest:
      return "query_request";
    case MessageKind::kQueryResult:
      return "query_result";
    case MessageKind::kUpdateShip:
      return "update_ship";
    case MessageKind::kLoadRequest:
      return "load_request";
    case MessageKind::kLoadData:
      return "load_data";
    case MessageKind::kInvalidation:
      return "invalidation";
    case MessageKind::kControl:
      return "control";
    case MessageKind::kQueryReject:
      return "query_reject";
    case MessageKind::kResyncRequest:
      return "resync_request";
    case MessageKind::kResyncData:
      return "resync_data";
    case MessageKind::kRecoverRequest:
      return "recover_request";
  }
  return "?";
}

/// Fixed modeled header size for any message (framing, ids, checksums).
inline constexpr Bytes kMessageHeaderBytes{64};

struct Message {
  MessageKind kind = MessageKind::kControl;
  /// Payload size on the wire (query text / result rows / update content /
  /// object data). Headers are accounted separately.
  Bytes payload;
  /// Ids are opaque to the transport; they identify the query/update/object
  /// the message is about.
  std::int64_t subject_id = -1;
  EventTime sent_at = 0;
  /// Originating endpoint, so a multi-endpoint server can address its reply
  /// (part of the modeled fixed-size header, not extra payload).
  std::string sender;
  /// Fast-path sender identity: the server-assigned cache slot
  /// (ServerNode::attach_cache) carried by cache->server requests so the
  /// server resolves the sender without a name lookup. -1 = unset; the
  /// receiver then falls back to resolving `sender` by name.
  std::int32_t sender_slot = -1;
  /// Fast-path sender identity for the *transport*: the sender's own
  /// transport slot (register_endpoint), so a link-aware transport keys
  /// the egress link without hashing `sender`. Distinct from sender_slot,
  /// which indexes the server's registration table. -1 = unset (external
  /// senders); the transport then falls back to resolving by name.
  std::int32_t sender_transport_slot = -1;
  /// Request/reply correlation: a CacheNode stamps each request with a
  /// fresh id and the server echoes it in the data-bearing reply, so a
  /// non-blocking endpoint can match responses to its pending-request
  /// table regardless of delivery order. -1 = uncorrelated (notices).
  std::int64_t correlation_id = -1;
  /// Simulated-clock timestamps stamped by a latency-aware transport
  /// (DelayedTransport): when the message entered its link and when it was
  /// delivered. Both stay 0 on synchronous transports; their gap is the
  /// simulated one-way latency including queueing behind earlier sends.
  double sim_sent_at = 0.0;
  double sim_delivered_at = 0.0;
  /// Congestion batching (ServerNode): additional invalidation notices
  /// coalesced into this message. On a merged kInvalidation the ids here
  /// are the updates BEYOND subject_id; on a data-bearing reply they are
  /// notices piggybacked alongside the payload. Their wire cost is
  /// `batch_bytes` — included in serialization occupancy and metered as
  /// overhead (never as mechanism payload, so figure accounting is
  /// unaffected). Empty on every message when batching is off.
  std::vector<std::int64_t> batched_invalidations;
  Bytes batch_bytes;
  /// Retry attempt number for correlated requests (1 = first transmission).
  /// The server's dedup window keys on (correlation_id, attempt) so a
  /// retransmission after a lost reply is answered again while a duplicated
  /// delivery of the same attempt is suppressed.
  std::int32_t attempt = 1;
  /// Protocol-hardening epoch/generation stamp. On kResyncRequest it is the
  /// cache's new registration epoch; on load requests and eviction notices
  /// it is the cache's per-object registration generation, letting the
  /// server discard an eviction notice that a reorder fault delivered after
  /// the object was already reloaded. -1 = unstamped (protocol off).
  std::int64_t protocol_epoch = -1;
  /// Server-side ingest instants (sim seconds) for each id in
  /// `batched_invalidations`, stamped when the protocol layer is on so the
  /// staleness observer can sample every coalesced/piggybacked notice
  /// individually. Empty when the protocol layer is off.
  std::vector<double> batched_ingest_at;
  /// Cumulative per-cache notice-ledger count, stamped (protocol on) on
  /// every message that carries live invalidation ids: this message covers
  /// ledger positions (notice_ledger - ids, notice_ledger]. A cache whose
  /// high-water mark sits below the range start has provably lost notices
  /// — the only way a quiet cache can detect a silent partition of its
  /// one-way notice stream — and resyncs immediately. -1 = unstamped
  /// (protocol off, or a message carrying no live notices).
  std::int64_t notice_ledger = -1;
  /// Ingest instant for subject_id on a kInvalidation (protocol on);
  /// -1 = unstamped, observer falls back to sim_sent_at.
  double subject_ingest_at = -1.0;
};

/// Modeled wire cost of each coalesced invalidation id in
/// `batched_invalidations` (the id itself; framing is already paid by the
/// carrying message's header).
inline constexpr Bytes kBatchedNoticeBytes{8};

}  // namespace delta::net
