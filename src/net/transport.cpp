#include "net/transport.h"

#include <algorithm>

#include "util/check.h"

namespace delta::net {

void LoopbackTransport::register_endpoint(const std::string& name,
                                          MessageHandler handler) {
  DELTA_CHECK(handler != nullptr);
  const auto it = std::find_if(
      endpoints_.begin(), endpoints_.end(),
      [&](const auto& entry) { return entry.first == name; });
  if (it != endpoints_.end()) {
    it->second = std::move(handler);
  } else {
    endpoints_.emplace_back(name, std::move(handler));
  }
}

void LoopbackTransport::send(const std::string& destination,
                             const Message& message, Mechanism mechanism) {
  const auto it = std::find_if(
      endpoints_.begin(), endpoints_.end(),
      [&](const auto& entry) { return entry.first == destination; });
  DELTA_CHECK_MSG(it != endpoints_.end(),
                  "unknown endpoint '" << destination << "'");
  meter_.record(mechanism, message.payload);
  meter_.record(Mechanism::kOverhead, kMessageHeaderBytes);
  ++delivered_;
  it->second(message);
}

}  // namespace delta::net
