#include "net/transport.h"

#include "util/check.h"

namespace delta::net {

LoopbackTransport::Endpoint* LoopbackTransport::find(
    const std::string& name) {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &endpoints_[it->second];
}

const LoopbackTransport::Endpoint* LoopbackTransport::find(
    const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &endpoints_[it->second];
}

void LoopbackTransport::register_endpoint(const std::string& name,
                                          MessageHandler handler) {
  DELTA_CHECK(handler != nullptr);
  if (Endpoint* existing = find(name)) {
    existing->handler = std::move(handler);  // meter survives re-wiring
  } else {
    index_.emplace(name, endpoints_.size());
    endpoints_.push_back(Endpoint{name, std::move(handler), TrafficMeter{}});
  }
}

void LoopbackTransport::send(const std::string& destination,
                             const Message& message, Mechanism mechanism) {
  Endpoint* endpoint = find(destination);
  DELTA_CHECK_MSG(endpoint != nullptr,
                  "unknown endpoint '" << destination << "'");
  meter_.record(mechanism, message.payload);
  meter_.record(Mechanism::kOverhead, kMessageHeaderBytes);
  endpoint->meter.record(mechanism, message.payload);
  endpoint->meter.record(Mechanism::kOverhead, kMessageHeaderBytes);
  ++delivered_;
  endpoint->handler(message);
}

bool LoopbackTransport::has_endpoint(const std::string& name) const {
  return find(name) != nullptr;
}

const TrafficMeter& LoopbackTransport::endpoint_meter(
    const std::string& name) const {
  const Endpoint* endpoint = find(name);
  DELTA_CHECK_MSG(endpoint != nullptr,
                  "no meter: unknown endpoint '" << name << "'");
  return endpoint->meter;
}

std::vector<std::string> LoopbackTransport::endpoint_names() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const Endpoint& e : endpoints_) names.push_back(e.name);
  return names;
}

}  // namespace delta::net
