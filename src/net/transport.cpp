#include "net/transport.h"

#include "util/check.h"

namespace delta::net {

LoopbackTransport::Endpoint* LoopbackTransport::find(
    const std::string& name) {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &endpoints_[it->second];
}

const LoopbackTransport::Endpoint* LoopbackTransport::find(
    const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &endpoints_[it->second];
}

std::size_t LoopbackTransport::register_endpoint(const std::string& name,
                                                 MessageHandler handler) {
  DELTA_CHECK(handler != nullptr);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    endpoints_[it->second].handler = std::move(handler);  // meter survives
    return it->second;
  }
  const std::size_t slot = endpoints_.size();
  index_.emplace(name, slot);
  endpoints_.push_back(Endpoint{name, std::move(handler), TrafficMeter{}});
  return slot;
}

void LoopbackTransport::send(const std::string& destination,
                             const Message& message, Mechanism mechanism) {
  Endpoint* endpoint = find(destination);
  DELTA_CHECK_MSG(endpoint != nullptr,
                  "unknown endpoint '" << destination << "'");
  deliver(*endpoint, message, mechanism);
}

std::size_t LoopbackTransport::endpoint_slot(const std::string& name) const {
  const auto it = index_.find(name);
  DELTA_CHECK_MSG(it != index_.end(), "unknown endpoint '" << name << "'");
  return it->second;
}

void LoopbackTransport::send_to(std::size_t destination_slot,
                                const Message& message, Mechanism mechanism) {
  DELTA_CHECK_MSG(destination_slot < endpoints_.size(),
                  "unknown endpoint slot " << destination_slot);
  deliver(endpoints_[destination_slot], message, mechanism);
}

void LoopbackTransport::deliver(Endpoint& endpoint, const Message& message,
                                Mechanism mechanism) {
  meter_.record(mechanism, message.payload);
  meter_.record(Mechanism::kOverhead, kMessageHeaderBytes + message.batch_bytes);
  endpoint.meter.record(mechanism, message.payload);
  endpoint.meter.record(Mechanism::kOverhead,
                        kMessageHeaderBytes + message.batch_bytes);
  ++delivered_;
  endpoint.handler(message);
}

bool LoopbackTransport::has_endpoint(const std::string& name) const {
  return find(name) != nullptr;
}

const TrafficMeter& LoopbackTransport::endpoint_meter(
    const std::string& name) const {
  const Endpoint* endpoint = find(name);
  DELTA_CHECK_MSG(endpoint != nullptr,
                  "no meter: unknown endpoint '" << name << "'");
  return endpoint->meter;
}

const TrafficMeter& LoopbackTransport::endpoint_meter(
    std::size_t slot) const {
  DELTA_CHECK_MSG(slot < endpoints_.size(),
                  "no meter: unknown endpoint slot " << slot);
  return endpoints_[slot].meter;
}

std::vector<std::string> LoopbackTransport::endpoint_names() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const Endpoint& e : endpoints_) names.push_back(e.name);
  return names;
}

}  // namespace delta::net
