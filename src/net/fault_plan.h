// Seeded, deterministic fault injection for DelayedTransport (ISSUE 8).
//
// A FaultPlan describes *which* links misbehave and *how*: per-link
// drop/duplicate/reorder probabilities plus scheduled partitions (down/heal
// windows in simulated seconds). Every random draw comes from a splitmix64
// stream keyed by (link key, per-link message sequence number), so the fate
// of the n-th message on a link is a pure function of the plan seed and the
// endpoint names — independent of thread count, shard interleaving, or
// wall-clock anything. That is what makes chaos runs reproducible instead of
// flaky: the same plan over the same trace yields bit-identical yardsticks
// at T=1 and T=8.
//
// The zero-fault contract: a plan that is disabled — or enabled but with no
// nonzero probability and no partition window anywhere — must leave every
// run byte-identical to a build without the fault layer at all. The
// transport enforces this by gating every fault hook (including the
// fast-path changes) on "some link actually has a fault".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace delta::net {

/// Per-link fault probabilities. All default to zero (= no faults).
struct LinkFaults {
  /// Probability a message is silently lost after paying its serialization
  /// (the sender can't know the wire ate it, so the egress link stays busy).
  double drop = 0.0;
  /// Probability the link delivers a second copy of the message. The copy
  /// shares the original's timing and lands right after it (event order),
  /// modeling a retransmit artifact rather than a second serialization.
  double duplicate = 0.0;
  /// Probability a message's delivery is deferred by a uniform draw in
  /// (0, reorder_max_delay_seconds], letting later sends overtake it.
  double reorder = 0.0;
  double reorder_max_delay_seconds = 0.050;

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0;
  }
};

/// Half-open outage window [down, heal) in simulated seconds: messages
/// whose send instant falls inside are dropped (partition semantics — both
/// requests and replies die, the sender only learns via timeout).
struct FaultWindow {
  double down_seconds = 0.0;
  double heal_seconds = 0.0;

  [[nodiscard]] bool covers(double t) const {
    return t >= down_seconds && t < heal_seconds;
  }
};

/// Probabilistic faults on one directed link (or both directions when
/// duplex). Empty `from` means the external-sender row (messages injected
/// from outside any registered endpoint, e.g. the replay driver).
struct LinkFaultRule {
  std::string from;
  std::string to;
  bool duplex = true;
  LinkFaults faults;
};

/// Scheduled partition of one link: every message sent inside any window
/// is dropped. Windows may overlap; they are checked linearly (plans hold
/// a handful at most).
struct LinkPartition {
  std::string from;
  std::string to;
  bool duplex = true;
  std::vector<FaultWindow> windows;
};

/// Crash-stop schedule for one endpoint *process* (ISSUE 10). Each window
/// [down, heal) kills the named endpoint at `down_seconds` (its soft state
/// is wiped by the engine's crash event) and restarts it — cold — at
/// `heal_seconds`. While down, the transport drops every message the
/// endpoint would send (its send instant falls in a window) or receive
/// (its *final* delivery instant falls in a window). Heal instants must be
/// finite: they bound the retry ladders of in-flight requests the same way
/// partition heals do.
struct CrashSchedule {
  std::string name;
  std::vector<FaultWindow> windows;
};

/// The full fault configuration handed to DelayedTransport::set_fault_plan.
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 0x5eedFa017ULL;
  /// Faults applied to every link that no rule matches.
  LinkFaults default_faults;
  std::vector<LinkFaultRule> rules;
  std::vector<LinkPartition> partitions;
  /// Crash-stop endpoint failures. A schedule with no windows is inert and
  /// keeps the zero-fault byte-identity contract.
  std::vector<CrashSchedule> crashes;
};

/// Counters the transport accumulates while a plan is active.
struct FaultStats {
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t reordered = 0;
  std::int64_t partition_dropped = 0;
  /// Messages dropped because an endpoint process was down at the send or
  /// delivery instant (crash-stop semantics, not link loss).
  std::int64_t crash_dropped = 0;
};

// ---- deterministic draw helpers ------------------------------------------

/// splitmix64 finalizer: one statelessly-mixed 64-bit output per input.
[[nodiscard]] inline std::uint64_t fault_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over an endpoint name — stable link identity that does not depend
/// on registration order, so grow_link_grid can rebuild the fault grid
/// without perturbing any link's stream.
[[nodiscard]] inline std::uint64_t fault_name_hash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stream key for the directed link from->to under `seed`.
[[nodiscard]] inline std::uint64_t fault_link_key(std::uint64_t seed,
                                                 const std::string& from,
                                                 const std::string& to) {
  return fault_mix64(seed ^ fault_mix64(fault_name_hash(from)) ^
                     (fault_name_hash(to) * 0x9e3779b97f4a7c15ULL));
}

/// Uniform double in [0, 1) from a mixed 64-bit word.
[[nodiscard]] inline double fault_u01(std::uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace delta::net
