#include "net/delayed_transport.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace delta::net {

DelayedTransport::DelayedTransport(util::EventQueue* events,
                                   LinkModel default_link)
    : events_(events), default_link_(default_link) {
  DELTA_CHECK(events != nullptr);
}

std::size_t DelayedTransport::register_endpoint(const std::string& name,
                                                MessageHandler handler) {
  DELTA_CHECK(handler != nullptr);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    endpoints_[it->second].handler = std::move(handler);  // meter survives
    return it->second;
  }
  const std::size_t slot = endpoints_.size();
  index_.emplace(name, slot);
  endpoints_.push_back(
      Endpoint{name, std::move(handler), TrafficMeter{}, UplinkStats{}});
  return slot;
}

std::size_t DelayedTransport::endpoint_slot(const std::string& name) const {
  const auto it = index_.find(name);
  DELTA_CHECK_MSG(it != index_.end(), "unknown endpoint '" << name << "'");
  return it->second;
}

void DelayedTransport::send(const std::string& destination,
                            const Message& message, Mechanism mechanism) {
  const auto it = index_.find(destination);
  DELTA_CHECK_MSG(it != index_.end(),
                  "unknown endpoint '" << destination << "'");
  schedule_delivery(it->second, message, mechanism);
}

void DelayedTransport::send_to(std::size_t destination_slot,
                               const Message& message, Mechanism mechanism) {
  DELTA_CHECK_MSG(destination_slot < endpoints_.size(),
                  "unknown endpoint slot " << destination_slot);
  schedule_delivery(destination_slot, message, mechanism);
}

void DelayedTransport::wait_until(const std::function<bool()>& done) {
  events_->pump_until(done);
}

std::uint64_t DelayedTransport::link_key(std::size_t from, std::size_t to) {
  // kExternalSource wraps to 0; registered slots start at 1.
  const auto from32 = static_cast<std::uint32_t>(from + 1);
  return (static_cast<std::uint64_t>(from32) << 32) |
         static_cast<std::uint32_t>(to);
}

std::size_t DelayedTransport::resolve_sender(const Message& message) const {
  // Fast path: endpoints stamp their own transport slot, so the per-send
  // name hash is reserved for external senders (mirrors the slot fast path
  // in ServerNode::sender_entry).
  if (message.sender_transport_slot >= 0 &&
      static_cast<std::size_t>(message.sender_transport_slot) <
          endpoints_.size()) {
    const auto slot =
        static_cast<std::size_t>(message.sender_transport_slot);
    // A slot from another transport instance (or a forged one) must not be
    // silently attributed to the wrong sender's link.
    DELTA_DCHECK(endpoints_[slot].name == message.sender);
    return slot;
  }
  const auto it = index_.find(message.sender);
  return it == index_.end() ? kExternalSource : it->second;
}

DelayedTransport::Link& DelayedTransport::link_between(std::size_t from,
                                                       std::size_t to) {
  return *links_.try_emplace(link_key(from, to), default_link_).first;
}

void DelayedTransport::set_link(const std::string& from,
                                const std::string& to, LinkModel link) {
  const std::size_t from_slot = endpoint_slot(from);
  const std::size_t to_slot = endpoint_slot(to);
  link_between(from_slot, to_slot).model = link;
}

void DelayedTransport::set_duplex_link(const std::string& a,
                                       const std::string& b, LinkModel link) {
  set_link(a, b, link);
  set_link(b, a, link);
}

void DelayedTransport::schedule_delivery(std::size_t destination_slot,
                                         const Message& message,
                                         Mechanism mechanism) {
  const std::size_t sender_slot = resolve_sender(message);
  Link& link = link_between(sender_slot, destination_slot);

  const util::SimTime now = events_->now();
  const util::SimTime depart = std::max(now, link.busy_until);
  const double serialization =
      link.model.serialization_seconds(message.payload + kMessageHeaderBytes);
  link.busy_until = depart + serialization;
  const util::SimTime deliver_at =
      depart + serialization + link.model.one_way_seconds();

  if (sender_slot != kExternalSource) {
    UplinkStats& uplink = endpoints_[sender_slot].uplink;
    ++uplink.sends;
    uplink.busy_seconds += serialization;
    const double wait = depart - now;
    uplink.total_queue_wait += wait;
    uplink.max_queue_wait = std::max(uplink.max_queue_wait, wait);
  }

  std::uint32_t flight_index;
  if (flight_free_.empty()) {
    flight_index = static_cast<std::uint32_t>(flight_pool_.size());
    flight_pool_.emplace_back();
  } else {
    flight_index = flight_free_.back();
    flight_free_.pop_back();
  }
  InFlight& flight = flight_pool_[flight_index];
  flight.message = message;
  flight.message.sim_sent_at = now;
  flight.message.sim_delivered_at = deliver_at;
  flight.destination_slot = destination_slot;
  flight.mechanism = mechanism;
  ++in_flight_;
  events_->schedule(deliver_at,
                    [this, flight_index] { deliver_pooled(flight_index); });
}

void DelayedTransport::deliver_pooled(std::uint32_t flight_index) {
  // Move the record out and free the slot BEFORE invoking the handler:
  // handlers send further messages, which may grow (and reallocate) the
  // pool mid-delivery.
  InFlight& flight = flight_pool_[flight_index];
  const Message delivered = std::move(flight.message);
  const std::size_t destination_slot = flight.destination_slot;
  const Mechanism mechanism = flight.mechanism;
  flight_free_.push_back(flight_index);
  deliver(destination_slot, delivered, mechanism);
}

void DelayedTransport::deliver(std::size_t destination_slot,
                               const Message& message, Mechanism mechanism) {
  --in_flight_;
  Endpoint& endpoint = endpoints_[destination_slot];
  meter_.record(mechanism, message.payload);
  meter_.record(Mechanism::kOverhead, kMessageHeaderBytes);
  endpoint.meter.record(mechanism, message.payload);
  endpoint.meter.record(Mechanism::kOverhead, kMessageHeaderBytes);
  ++delivered_;
  if (observer_) observer_(message, destination_slot);
  endpoint.handler(message);
}

bool DelayedTransport::has_endpoint(const std::string& name) const {
  return index_.count(name) != 0;
}

const TrafficMeter& DelayedTransport::endpoint_meter(
    const std::string& name) const {
  return endpoints_[endpoint_slot(name)].meter;
}

const TrafficMeter& DelayedTransport::endpoint_meter(
    std::size_t slot) const {
  DELTA_CHECK_MSG(slot < endpoints_.size(),
                  "no meter: unknown endpoint slot " << slot);
  return endpoints_[slot].meter;
}

std::vector<std::string> DelayedTransport::endpoint_names() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const Endpoint& e : endpoints_) names.push_back(e.name);
  return names;
}

void DelayedTransport::set_delivery_observer(DeliveryObserver observer) {
  observer_ = std::move(observer);
}

const UplinkStats& DelayedTransport::uplink_stats(std::size_t slot) const {
  DELTA_CHECK_MSG(slot < endpoints_.size(),
                  "no uplink stats: unknown endpoint slot " << slot);
  return endpoints_[slot].uplink;
}

}  // namespace delta::net
