#include "net/delayed_transport.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace delta::net {

DelayedTransport::DelayedTransport(util::EventQueue* events,
                                   LinkModel default_link,
                                   bool aggregate_metering)
    : events_(events),
      default_link_(default_link),
      aggregate_metering_(aggregate_metering) {
  DELTA_CHECK(events != nullptr);
}

std::size_t DelayedTransport::register_endpoint(const std::string& name,
                                                MessageHandler handler) {
  DELTA_CHECK(handler != nullptr);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    endpoints_[it->second].handler = std::move(handler);  // meter survives
    return it->second;
  }
  const std::size_t slot = endpoints_.size();
  index_.emplace(name, slot);
  endpoints_.push_back(Endpoint{name, std::move(handler), TrafficMeter{}});
  endpoint_count_ = endpoints_.size();
  uplink_.push_back(UplinkStats{});
  grow_link_grid();
  return slot;
}

void DelayedTransport::grow_link_grid() {
  // Rebuild the dense (sender row, destination column) grid around the new
  // endpoint count. Existing links keep their model and busy horizon (the
  // wire does not forget its backlog when the topology grows).
  const std::size_t old_cols = grid_cols_;
  const std::size_t new_cols = endpoints_.size();
  std::vector<Link> grid((new_cols + 1) * new_cols,
                         Link{default_link_, 0.0});
  for (std::size_t row = 0; row < old_cols + 1; ++row) {
    for (std::size_t col = 0; col < old_cols; ++col) {
      grid[row * new_cols + col] = link_grid_[row * old_cols + col];
    }
  }
  link_grid_ = std::move(grid);
  grid_cols_ = new_cols;
  if (faults_active_) {
    const std::vector<LinkFaultState> old_faults = std::move(fault_grid_);
    rebuild_fault_grid(old_faults, old_cols);
  }
}

void DelayedTransport::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  faults_active_ = false;
  if (plan_.enabled) {
    faults_active_ = plan_.default_faults.any();
    for (const LinkFaultRule& rule : plan_.rules) {
      faults_active_ = faults_active_ || rule.faults.any();
    }
    for (const LinkPartition& partition : plan_.partitions) {
      faults_active_ = faults_active_ || !partition.windows.empty();
    }
    for (const CrashSchedule& crash : plan_.crashes) {
      faults_active_ = faults_active_ || !crash.windows.empty();
    }
  }
  rebuild_fault_grid({}, 0);  // a new plan restarts every link's stream
}

void DelayedTransport::rebuild_fault_grid(
    const std::vector<LinkFaultState>& old_grid, std::size_t old_cols) {
  if (!faults_active_) {
    fault_grid_.clear();
    crash_windows_.clear();
    return;
  }
  fault_grid_.assign((grid_cols_ + 1) * grid_cols_, LinkFaultState{});
  // Crash-stop schedules resolve by endpoint name, like everything else in
  // the plan, so registration order cannot perturb fates.
  crash_windows_.assign(grid_cols_, nullptr);
  for (std::size_t slot = 0; slot < grid_cols_; ++slot) {
    for (const CrashSchedule& crash : plan_.crashes) {
      if (crash.name == endpoints_[slot].name && !crash.windows.empty()) {
        crash_windows_[slot] = &crash.windows;
        break;
      }
    }
  }
  for (std::size_t row = 0; row < grid_cols_ + 1; ++row) {
    // Row 0 is the shared external-sender source; a plan addresses it with
    // an empty endpoint name.
    static const std::string kExternalName;
    const std::string& from =
        row == 0 ? kExternalName : endpoints_[row - 1].name;
    for (std::size_t col = 0; col < grid_cols_; ++col) {
      const std::string& to = endpoints_[col].name;
      LinkFaultState& state = fault_grid_[row * grid_cols_ + col];
      state.key = fault_link_key(plan_.seed, from, to);
      state.faults = plan_.default_faults;
      for (const LinkFaultRule& rule : plan_.rules) {  // last match wins
        if ((rule.from == from && rule.to == to) ||
            (rule.duplex && rule.from == to && rule.to == from)) {
          state.faults = rule.faults;
        }
      }
      for (const LinkPartition& partition : plan_.partitions) {
        if ((partition.from == from && partition.to == to) ||
            (partition.duplex && partition.from == to &&
             partition.to == from)) {
          state.windows = &partition.windows;
          break;
        }
      }
    }
  }
  // Topology growth preserves every existing link's stream position.
  for (std::size_t row = 0; row < old_cols + 1; ++row) {
    for (std::size_t col = 0; col < old_cols; ++col) {
      fault_grid_[row * grid_cols_ + col].seq =
          old_grid[row * old_cols + col].seq;
    }
  }
}

DelayedTransport::FaultDecision DelayedTransport::apply_link_faults(
    std::size_t destination_slot, LinkTiming& timing) {
  if (!faults_active_) return FaultDecision{};
  LinkFaultState& state =
      fault_grid_[link_row(timing.sender_slot) * grid_cols_ +
                  destination_slot];
  const std::uint64_t seq = state.seq++;
  // Crash-stop gating (ISSUE 10): a dead process can neither send nor
  // receive. The sender check uses the send instant; the destination check
  // runs at the *final* delivery instant, after any reorder delay, so a
  // message in flight across a heal still lands (late replies are the
  // restarted cache's problem, not the wire's).
  if (endpoint_down(timing.sender_slot, timing.sent_at)) {
    ++fault_stats_.crash_dropped;
    return FaultDecision{false, false};
  }
  if (state.windows != nullptr) {
    for (const FaultWindow& window : *state.windows) {
      if (window.covers(timing.sent_at)) {
        ++fault_stats_.partition_dropped;
        return FaultDecision{false, false};
      }
    }
  }
  if (!state.faults.any()) {
    if (endpoint_down(destination_slot, timing.deliver_at)) {
      ++fault_stats_.crash_dropped;
      return FaultDecision{false, false};
    }
    return FaultDecision{};
  }
  // The message's private splitmix stream: its fate is a pure function of
  // (plan seed, link endpoint names, per-link sequence number) — no shared
  // RNG state, so shard interleaving and thread count cannot touch it.
  std::uint64_t s = state.key ^ fault_mix64(seq);
  const auto draw = [&s] {
    s = fault_mix64(s);
    return fault_u01(s);
  };
  if (draw() < state.faults.drop) {
    ++fault_stats_.dropped;
    return FaultDecision{false, false};
  }
  FaultDecision fate;
  if (draw() < state.faults.reorder) {
    ++fault_stats_.reordered;
    timing.deliver_at += draw() * state.faults.reorder_max_delay_seconds;
  }
  if (draw() < state.faults.duplicate) {
    ++fault_stats_.duplicated;
    fate.duplicate = true;
  }
  // Post-reorder delivery instant: the destination must be alive when the
  // message actually lands (the duplicate shares this timing, so one dead
  // destination kills both copies).
  if (endpoint_down(destination_slot, timing.deliver_at)) {
    ++fault_stats_.crash_dropped;
    return FaultDecision{false, false};
  }
  return fate;
}

std::size_t DelayedTransport::endpoint_slot(const std::string& name) const {
  const auto it = index_.find(name);
  DELTA_CHECK_MSG(it != index_.end(), "unknown endpoint '" << name << "'");
  return it->second;
}

void DelayedTransport::send(const std::string& destination,
                            const Message& message, Mechanism mechanism) {
  const auto it = index_.find(destination);
  DELTA_CHECK_MSG(it != index_.end(),
                  "unknown endpoint '" << destination << "'");
  schedule_delivery(it->second, message, mechanism);
}

void DelayedTransport::send_to(std::size_t destination_slot,
                               const Message& message, Mechanism mechanism) {
  DELTA_CHECK_MSG(destination_slot < endpoint_count_,
                  "unknown endpoint slot " << destination_slot);
  schedule_delivery(destination_slot, message, mechanism);
}

void DelayedTransport::send_to(std::size_t destination_slot,
                               Message& message, Mechanism mechanism) {
  DELTA_CHECK_MSG(destination_slot < endpoint_count_,
                  "unknown endpoint slot " << destination_slot);
  LinkTiming timing = plan_transfer(message, destination_slot);
  const FaultDecision fate = apply_link_faults(destination_slot, timing);
  if (!fate.deliver) return;  // lost on the wire; serialization is paid
  if (reply_window_) {
    // First send while a send_call request is being handled: this is the
    // reply its sender is blocked on, and the caller owns the message —
    // stamp in place, no copy (the path every server reply takes).
    reply_window_ = false;
    if (deliver_inline(destination_slot, message, mechanism, timing,
                       /*request_window=*/false)) {
      return;
    }
  }
  schedule_flight(destination_slot, message, mechanism, timing);
  if (fate.duplicate) {
    schedule_flight(destination_slot, message, mechanism, timing);
  }
}

void DelayedTransport::wait_until(WaitPredicate done, void* ctx) {
  events_->pump_until([done, ctx] { return done(ctx); });
}

double DelayedTransport::egress_backlog_seconds(std::size_t from_slot,
                                                std::size_t to_slot) const {
  DELTA_CHECK_MSG(from_slot < endpoint_count_ && to_slot < endpoint_count_,
                  "no backlog: unknown endpoint slot");
  const Link& link = link_between(from_slot, to_slot);
  return std::max(0.0, link.busy_until - events_->now());
}

std::size_t DelayedTransport::resolve_sender(const Message& message) const {
  // Fast path: endpoints stamp their own transport slot, so the per-send
  // name hash is reserved for external senders (mirrors the slot fast path
  // in ServerNode::sender_entry).
  if (message.sender_transport_slot >= 0 &&
      static_cast<std::size_t>(message.sender_transport_slot) <
          endpoint_count_) {
    const auto slot =
        static_cast<std::size_t>(message.sender_transport_slot);
    // A slot from another transport instance (or a forged one) must not be
    // silently attributed to the wrong sender's link.
    DELTA_DCHECK(endpoints_[slot].name == message.sender);
    return slot;
  }
  const auto it = index_.find(message.sender);
  return it == index_.end() ? kExternalSource : it->second;
}

void DelayedTransport::set_link(const std::string& from,
                                const std::string& to, LinkModel link) {
  const std::size_t from_slot = endpoint_slot(from);
  const std::size_t to_slot = endpoint_slot(to);
  link_between(from_slot, to_slot).model = link;
}

void DelayedTransport::set_duplex_link(const std::string& a,
                                       const std::string& b, LinkModel link) {
  set_link(a, b, link);
  set_link(b, a, link);
}

DelayedTransport::LinkTiming DelayedTransport::plan_transfer(
    const Message& message, std::size_t destination_slot) {
  // The inline fast path's exactness rests on "one send per handled
  // request": while a send_call dispatch is on the stack, the clock may
  // already sit at the reply's arrival, so any send after the window was
  // consumed would be planned at the wrong instant. Fail loudly instead
  // of silently diverging from the queue schedule.
  DELTA_CHECK_MSG(!inline_dispatch_ || reply_window_,
                  "handler sent more than one message while its request "
                  "was delivered inline (send_call fast path supports "
                  "exactly one reply; use send_to from an async context)");
  const std::size_t sender_slot = resolve_sender(message);
  Link& link = link_between(sender_slot, destination_slot);

  const util::SimTime now = events_->now();
  const util::SimTime depart = std::max(now, link.busy_until);
  const double serialization = link.model.serialization_seconds(
      message.payload + kMessageHeaderBytes + message.batch_bytes);
  link.busy_until = depart + serialization;

  if (sender_slot != kExternalSource) {
    UplinkStats& uplink = uplink_[sender_slot];
    ++uplink.sends;
    uplink.busy_seconds += serialization;
    if (depart > now) {  // queued behind an earlier send (wait > 0)
      const double wait = depart - now;
      uplink.total_queue_wait += wait;
      uplink.max_queue_wait = std::max(uplink.max_queue_wait, wait);
    }
  }
  return LinkTiming{now, depart + serialization + link.model.one_way_seconds(),
                    sender_slot};
}

void DelayedTransport::schedule_delivery(std::size_t destination_slot,
                                         const Message& message,
                                         Mechanism mechanism) {
  LinkTiming timing = plan_transfer(message, destination_slot);
  const FaultDecision fate = apply_link_faults(destination_slot, timing);
  if (!fate.deliver) return;  // lost on the wire; serialization is paid
  if (reply_window_) {
    // First send while a send_call request is being handled: this is the
    // reply its sender is blocked on, so the clock may fast-forward to its
    // arrival when nothing executes earlier (see send_call). const-ref
    // senders get a stamped copy.
    reply_window_ = false;
    Message stamped = message;
    if (deliver_inline(destination_slot, stamped, mechanism, timing,
                       /*request_window=*/false)) {
      return;
    }
  }
  schedule_flight(destination_slot, message, mechanism, timing);
  if (fate.duplicate) {
    schedule_flight(destination_slot, message, mechanism, timing);
  }
}

void DelayedTransport::send_call(std::size_t destination_slot,
                                 Message& message, Mechanism mechanism) {
  DELTA_CHECK_MSG(destination_slot < endpoint_count_,
                  "unknown endpoint slot " << destination_slot);
  LinkTiming timing = plan_transfer(message, destination_slot);
  const FaultDecision fate = apply_link_faults(destination_slot, timing);
  if (!fate.deliver) return;  // the blocked caller only learns via timeout
  // The caller blocks until the reply, so jumping the clock to the
  // request's arrival is exactly what popping it off the queue would have
  // done — minus the queue round trip and the in-flight copy. The message
  // is stamped in place (the caller owns it).
  if (deliver_inline(destination_slot, message, mechanism, timing,
                     /*request_window=*/true)) {
    return;
  }
  schedule_flight(destination_slot, message, mechanism, timing);
  if (fate.duplicate) {
    schedule_flight(destination_slot, message, mechanism, timing);
  }
}

bool DelayedTransport::deliver_inline(std::size_t destination_slot,
                                      Message& message, Mechanism mechanism,
                                      const LinkTiming& timing,
                                      bool request_window) {
  if (!can_deliver_inline(timing.deliver_at)) return false;
  events_->fast_forward(timing.deliver_at);
  message.sim_sent_at = timing.sent_at;
  message.sim_delivered_at = timing.deliver_at;
  if (request_window) {
    const bool outer_dispatch = inline_dispatch_;
    inline_dispatch_ = true;
    reply_window_ = true;
    deliver(destination_slot, message, mechanism);
    reply_window_ = false;
    inline_dispatch_ = outer_dispatch;
  } else {
    deliver(destination_slot, message, mechanism);
  }
  return true;
}

void DelayedTransport::schedule_flight(std::size_t destination_slot,
                                       const Message& message,
                                       Mechanism mechanism,
                                       const LinkTiming& timing) {
  std::uint32_t flight_index;
  if (flight_free_.empty()) {
    flight_index = static_cast<std::uint32_t>(flight_pool_.size());
    flight_pool_.emplace_back();
  } else {
    flight_index = flight_free_.back();
    flight_free_.pop_back();
  }
  InFlight& flight = flight_pool_[flight_index];
  flight.message = message;
  flight.message.sim_sent_at = timing.sent_at;
  flight.message.sim_delivered_at = timing.deliver_at;
  flight.destination_slot = destination_slot;
  flight.mechanism = mechanism;
  ++in_flight_;
  events_->schedule(
      timing.deliver_at,
      [](void* self, std::uint64_t index) {
        static_cast<DelayedTransport*>(self)->deliver_pooled(
            static_cast<std::uint32_t>(index));
      },
      this, flight_index);
}

void DelayedTransport::deliver_pooled(std::uint32_t flight_index) {
  // Move the record out and free the slot BEFORE invoking the handler:
  // handlers send further messages, which may grow (and reallocate) the
  // pool mid-delivery.
  InFlight& flight = flight_pool_[flight_index];
  const Message delivered = std::move(flight.message);
  const std::size_t destination_slot = flight.destination_slot;
  const Mechanism mechanism = flight.mechanism;
  flight_free_.push_back(flight_index);
  --in_flight_;
  // A popped delivery is never the fast-path reply target: the window is
  // only open across an inline send_call dispatch.
  deliver(destination_slot, delivered, mechanism);
}

void DelayedTransport::deliver(std::size_t destination_slot,
                               const Message& message, Mechanism mechanism) {
  Endpoint& endpoint = endpoints_[destination_slot];
  if (aggregate_metering_) {
    meter_.record(mechanism, message.payload);
    meter_.record(Mechanism::kOverhead,
                  kMessageHeaderBytes + message.batch_bytes);
  }
  endpoint.meter.record(mechanism, message.payload);
  endpoint.meter.record(Mechanism::kOverhead,
                        kMessageHeaderBytes + message.batch_bytes);
  ++delivered_;
  if (observer_ != nullptr &&
      (observer_kind_ < 0 ||
       observer_kind_ == static_cast<std::int16_t>(message.kind))) {
    observer_(observer_ctx_, message, destination_slot);
  }
  endpoint.handler(message);
}

bool DelayedTransport::has_endpoint(const std::string& name) const {
  return index_.count(name) != 0;
}

const TrafficMeter& DelayedTransport::endpoint_meter(
    const std::string& name) const {
  return endpoints_[endpoint_slot(name)].meter;
}

const TrafficMeter& DelayedTransport::endpoint_meter(
    std::size_t slot) const {
  DELTA_CHECK_MSG(slot < endpoint_count_,
                  "no meter: unknown endpoint slot " << slot);
  return endpoints_[slot].meter;
}

std::vector<std::string> DelayedTransport::endpoint_names() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const Endpoint& e : endpoints_) names.push_back(e.name);
  return names;
}

void DelayedTransport::set_delivery_observer(DeliveryObserver observer,
                                             void* ctx) {
  observer_ = observer;
  observer_ctx_ = ctx;
  observer_kind_ = -1;
}

void DelayedTransport::set_delivery_observer(DeliveryObserver observer,
                                             void* ctx, MessageKind kind) {
  observer_ = observer;
  observer_ctx_ = ctx;
  observer_kind_ = static_cast<std::int16_t>(kind);
}

const UplinkStats& DelayedTransport::uplink_stats(std::size_t slot) const {
  DELTA_CHECK_MSG(slot < endpoint_count_,
                  "no uplink stats: unknown endpoint slot " << slot);
  return uplink_[slot];
}

}  // namespace delta::net
