// Per-mechanism network-traffic accounting: the metric every figure in the
// paper's evaluation plots.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "net/message.h"
#include "util/check.h"
#include "util/types.h"

namespace delta::net {

/// The paper's three data-communication mechanisms plus result return.
enum class Mechanism : std::uint8_t {
  kQueryShip = 0,   // query sent to the server + its result bytes
  kUpdateShip = 1,  // update content pushed to the cache
  kObjectLoad = 2,  // whole data objects bulk-copied to the cache
  kOverhead = 3,    // headers / control chatter (not part of figure totals)
};

inline constexpr std::size_t kMechanismCount = 4;

[[nodiscard]] constexpr const char* to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kQueryShip:
      return "query_ship";
    case Mechanism::kUpdateShip:
      return "update_ship";
    case Mechanism::kObjectLoad:
      return "object_load";
    case Mechanism::kOverhead:
      return "overhead";
  }
  return "?";
}

/// Thread-safety contract: single writer, concurrent readers. At most one
/// thread may call record()/reset() on a meter at a time — exactly how the
/// simulation engines use meters (each replica's meters are confined to one
/// worker between the launch and join barriers). Under that contract the
/// counters are written with plain (non-read-modify-write) relaxed atomic
/// stores, so recording costs ordinary loads and stores on the replay hot
/// path; storage stays atomic so a concurrent *reader* (e.g. a progress
/// observer) sees untorn, monotonically-growing values. A consistent
/// snapshot across mechanisms (the warm-up boundary captures in sim/)
/// additionally requires writer quiescence, which the engines' barriers
/// provide. Totals over concurrent writers to the SAME meter are NOT exact
/// — give each writer its own meter and fold after the barrier, as the
/// parallel engine does (tests/net_test.cpp pins this model).
class TrafficMeter {
 public:
  TrafficMeter() = default;
  // Copies are snapshots: meters are copied only while quiescent (endpoint
  // re-registration, merge-time folding), never mid-record.
  TrafficMeter(const TrafficMeter& other);
  TrafficMeter& operator=(const TrafficMeter& other);

  /// Inline: this is the single hottest call in the replay loop (four per
  /// delivered message across the aggregate and endpoint meters).
  void record(Mechanism mechanism, Bytes bytes) {
    DELTA_CHECK(bytes.count() >= 0);
    const auto i = static_cast<std::size_t>(mechanism);
    // Single-writer contract: load+store, not fetch_add (see class docs).
    totals_[i].store(totals_[i].load(std::memory_order_relaxed) +
                         bytes.count(),
                     std::memory_order_relaxed);
    counts_[i].store(counts_[i].load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  [[nodiscard]] Bytes total(Mechanism mechanism) const {
    return Bytes{totals_[static_cast<std::size_t>(mechanism)].load(
        std::memory_order_relaxed)};
  }

  /// Figure total: query shipping + update shipping + object loading
  /// (overhead excluded, as in the paper's cost model). Inline: the replay
  /// loops read it once per meter per trace event for the cumulative
  /// series.
  [[nodiscard]] Bytes figure_total() const {
    return Bytes{totals_[0].load(std::memory_order_relaxed) +
                 totals_[1].load(std::memory_order_relaxed) +
                 totals_[2].load(std::memory_order_relaxed)};
  }

  [[nodiscard]] std::int64_t message_count(Mechanism mechanism) const;

  void reset();

  [[nodiscard]] std::string summary() const;

 private:
  std::array<std::atomic<std::int64_t>, kMechanismCount> totals_{};
  std::array<std::atomic<std::int64_t>, kMechanismCount> counts_{};
};

}  // namespace delta::net
