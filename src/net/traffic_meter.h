// Per-mechanism network-traffic accounting: the metric every figure in the
// paper's evaluation plots.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "net/message.h"
#include "util/types.h"

namespace delta::net {

/// The paper's three data-communication mechanisms plus result return.
enum class Mechanism : std::uint8_t {
  kQueryShip = 0,   // query sent to the server + its result bytes
  kUpdateShip = 1,  // update content pushed to the cache
  kObjectLoad = 2,  // whole data objects bulk-copied to the cache
  kOverhead = 3,    // headers / control chatter (not part of figure totals)
};

inline constexpr std::size_t kMechanismCount = 4;

[[nodiscard]] constexpr const char* to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kQueryShip:
      return "query_ship";
    case Mechanism::kUpdateShip:
      return "update_ship";
    case Mechanism::kObjectLoad:
      return "object_load";
    case Mechanism::kOverhead:
      return "overhead";
  }
  return "?";
}

/// Thread-safety contract: record() may be called concurrently — each
/// (mechanism, bytes, count) accumulation is atomic, so totals over any set
/// of concurrent recorders are exact. Readers see individually-atomic
/// counters; a *consistent snapshot across mechanisms* (e.g. the warm-up
/// boundary captures in sim/) additionally requires that no writer is
/// concurrent, which the simulation engines guarantee by confining each
/// meter to one worker between merge barriers. reset() has the same
/// quiescence requirement.
class TrafficMeter {
 public:
  TrafficMeter() = default;
  // Copies are snapshots: meters are copied only while quiescent (endpoint
  // re-registration, merge-time folding), never mid-record.
  TrafficMeter(const TrafficMeter& other);
  TrafficMeter& operator=(const TrafficMeter& other);

  void record(Mechanism mechanism, Bytes bytes);

  [[nodiscard]] Bytes total(Mechanism mechanism) const;

  /// Figure total: query shipping + update shipping + object loading
  /// (overhead excluded, as in the paper's cost model).
  [[nodiscard]] Bytes figure_total() const;

  [[nodiscard]] std::int64_t message_count(Mechanism mechanism) const;

  void reset();

  [[nodiscard]] std::string summary() const;

 private:
  std::array<std::atomic<std::int64_t>, kMechanismCount> totals_{};
  std::array<std::atomic<std::int64_t>, kMechanismCount> counts_{};
};

}  // namespace delta::net
