// Message transport between middleware endpoints.
//
// The production deployment the paper describes runs MS SQL replication
// between two workstations; what the algorithms observe is only *which*
// messages flow and *how many bytes* they carry. LoopbackTransport is the
// in-process implementation used by the simulator: synchronous delivery,
// deterministic ordering, full byte accounting (payload through the caller's
// TrafficMeter category, headers as overhead).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/traffic_meter.h"

namespace delta::net {

/// A named endpoint that can receive messages.
using MessageHandler = std::function<void(const Message&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers (or replaces) the handler for a destination endpoint.
  virtual void register_endpoint(const std::string& name,
                                 MessageHandler handler) = 0;

  /// Delivers `message` to `destination`, accounting `message.payload`
  /// under `mechanism` and the header under overhead.
  virtual void send(const std::string& destination, const Message& message,
                    Mechanism mechanism) = 0;

  [[nodiscard]] virtual const TrafficMeter& meter() const = 0;
  virtual TrafficMeter& meter() = 0;
};

/// Synchronous in-process transport with deterministic delivery order.
class LoopbackTransport final : public Transport {
 public:
  void register_endpoint(const std::string& name,
                         MessageHandler handler) override;

  void send(const std::string& destination, const Message& message,
            Mechanism mechanism) override;

  [[nodiscard]] const TrafficMeter& meter() const override { return meter_; }
  TrafficMeter& meter() override { return meter_; }

  [[nodiscard]] std::int64_t delivered_count() const { return delivered_; }

 private:
  std::vector<std::pair<std::string, MessageHandler>> endpoints_;
  TrafficMeter meter_;
  std::int64_t delivered_ = 0;
};

}  // namespace delta::net
