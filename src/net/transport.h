// Message transport between middleware endpoints.
//
// The production deployment the paper describes runs MS SQL replication
// between two workstations; what the algorithms observe is only *which*
// messages flow and *how many bytes* they carry. LoopbackTransport is the
// in-process implementation used by the simulator: synchronous delivery,
// deterministic ordering, full byte accounting (payload through the caller's
// TrafficMeter category, headers as overhead).
//
// Accounting is kept at two granularities. The aggregate meter() sees every
// message, so existing figure numbers are unchanged; additionally each
// registered endpoint owns a meter that sees exactly the messages delivered
// *to* it. Every send is accounted to exactly one endpoint meter, so the
// per-endpoint meters partition the aggregate: summing any mechanism over
// all endpoints reproduces the aggregate total byte-for-byte.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "net/traffic_meter.h"
#include "util/check.h"

namespace delta::util {
class EventQueue;
}  // namespace delta::util

namespace delta::net {

/// A named endpoint that can receive messages.
using MessageHandler = std::function<void(const Message&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers (or replaces) the handler for a destination endpoint.
  /// Re-registration keeps the endpoint's accumulated meter (and slot).
  /// Returns the endpoint's stable slot, usable with send_to().
  virtual std::size_t register_endpoint(const std::string& name,
                                        MessageHandler handler) = 0;

  /// Delivers `message` to `destination`, accounting `message.payload`
  /// under `mechanism` and the header under overhead. Delivery to an
  /// unregistered endpoint is a checked failure.
  virtual void send(const std::string& destination, const Message& message,
                    Mechanism mechanism) = 0;

  /// Slot of a registered endpoint (checked failure if unknown). Resolve
  /// once, then address messages with send_to — the per-message name hash
  /// is measurable on the replay hot path.
  [[nodiscard]] virtual std::size_t endpoint_slot(
      const std::string& name) const = 0;

  /// send() addressed by slot instead of name: O(1), no hashing.
  virtual void send_to(std::size_t destination_slot, const Message& message,
                       Mechanism mechanism) = 0;

  /// Mutable-message variant of send_to — identical semantics, but the
  /// transport may stamp simulated timestamps into `message` in place
  /// instead of copying it (senders that keep the message own it). Non-
  /// const lvalue arguments resolve here automatically; the default
  /// forwards to the const overload.
  virtual void send_to(std::size_t destination_slot, Message& message,
                       Mechanism mechanism) {
    send_to(destination_slot, static_cast<const Message&>(message),
            mechanism);
  }

  /// Sends a request whose reply the caller is about to block on (the
  /// sync-façade round trip), stamping any simulated timestamps into
  /// `message` in place. Semantically identical to send_to; the blocking
  /// contract lets an event-driven transport fast-forward its clock to the
  /// delivery instant and deliver inline — skipping the event queue — when
  /// no earlier event is pending, and extend the same fast path to the
  /// reply sent while this request is being handled. Callers that do NOT
  /// immediately wait for the reply must use send_to.
  virtual void send_call(std::size_t destination_slot, Message& message,
                         Mechanism mechanism) {
    send_to(destination_slot, message, mechanism);
  }

  /// True when send() delivers (and meters) inline before returning —
  /// LoopbackTransport. Event-driven transports return false: delivery
  /// happens when the simulated clock reaches the message's arrival time.
  [[nodiscard]] virtual bool synchronous() const { return true; }

  /// Completion predicate for wait_until: a plain function pointer plus a
  /// context pointer, so the per-request wait of a sync façade constructs
  /// no std::function (the wait sits on the replay hot path).
  using WaitPredicate = bool (*)(void* ctx);

  /// Blocks the caller until `done(ctx)` holds. On a synchronous transport
  /// every request has already completed inline, so the default merely
  /// checks; an event-driven transport overrides this to pump its event
  /// queue (delivering any messages in flight) until the condition holds.
  /// This is the primitive the CacheNode sync façade awaits replies with.
  virtual void wait_until(WaitPredicate done, void* ctx) {
    DELTA_CHECK_MSG(done(ctx),
                    "request did not complete inline on a synchronous "
                    "transport");
  }

  /// Congestion signal: simulated seconds of serialization backlog already
  /// queued on the egress link from `from_slot` to `to_slot` (how long a
  /// message sent now would wait before its own serialization starts).
  /// Zero on synchronous transports — there is no queueing to observe —
  /// so backlog-gated behavior (ServerNode notice batching) degenerates to
  /// the unbatched path there.
  [[nodiscard]] virtual double egress_backlog_seconds(
      std::size_t from_slot, std::size_t to_slot) const {
    (void)from_slot;
    (void)to_slot;
    return 0.0;
  }

  /// The event queue driving an event-driven transport, or nullptr on a
  /// synchronous one. Protocol features that need simulated-time timers
  /// (retry deadlines) probe this and stay disabled when it is absent.
  [[nodiscard]] virtual util::EventQueue* events() { return nullptr; }

  /// Current simulated time in seconds (0.0 on synchronous transports,
  /// which have no clock). Used for protocol timestamps (notice ingest
  /// instants, unavailability windows) without reaching into the queue.
  [[nodiscard]] virtual double now() const { return 0.0; }

  /// Aggregate accounting across all endpoints.
  [[nodiscard]] virtual const TrafficMeter& meter() const = 0;
  virtual TrafficMeter& meter() = 0;

  // ---- per-endpoint accounting ----

  [[nodiscard]] virtual bool has_endpoint(const std::string& name) const = 0;

  /// Meter of the traffic delivered to `name`. Checked failure if the
  /// endpoint is not registered.
  [[nodiscard]] virtual const TrafficMeter& endpoint_meter(
      const std::string& name) const = 0;

  /// Slot-addressed endpoint meter: O(1), no per-call name hash. Resolve
  /// the slot once at registration (register_endpoint returns it), then
  /// read meters through this on hot paths (see CacheNode::meter()).
  [[nodiscard]] virtual const TrafficMeter& endpoint_meter(
      std::size_t slot) const = 0;

  /// Registered endpoint names, in registration order.
  [[nodiscard]] virtual std::vector<std::string> endpoint_names() const = 0;
};

/// Synchronous in-process transport with deterministic delivery order.
class LoopbackTransport final : public Transport {
 public:
  std::size_t register_endpoint(const std::string& name,
                                MessageHandler handler) override;

  void send(const std::string& destination, const Message& message,
            Mechanism mechanism) override;

  [[nodiscard]] std::size_t endpoint_slot(
      const std::string& name) const override;

  void send_to(std::size_t destination_slot, const Message& message,
               Mechanism mechanism) override;

  [[nodiscard]] const TrafficMeter& meter() const override { return meter_; }
  TrafficMeter& meter() override { return meter_; }

  [[nodiscard]] bool has_endpoint(const std::string& name) const override;
  [[nodiscard]] const TrafficMeter& endpoint_meter(
      const std::string& name) const override;
  [[nodiscard]] const TrafficMeter& endpoint_meter(
      std::size_t slot) const override;
  [[nodiscard]] std::vector<std::string> endpoint_names() const override;

  [[nodiscard]] std::int64_t delivered_count() const { return delivered_; }

 private:
  struct Endpoint {
    std::string name;
    MessageHandler handler;
    TrafficMeter meter;
  };

  [[nodiscard]] Endpoint* find(const std::string& name);
  [[nodiscard]] const Endpoint* find(const std::string& name) const;
  void deliver(Endpoint& endpoint, const Message& message,
               Mechanism mechanism);

  /// Deque so endpoint meters stay at stable addresses as later endpoints
  /// register — callers may hold endpoint_meter() references long-term.
  std::deque<Endpoint> endpoints_;
  /// Name -> endpoints_ slot: keeps send() O(1) in the endpoint count
  /// (sends are per-message on the simulation hot path).
  std::unordered_map<std::string, std::size_t> index_;
  TrafficMeter meter_;
  std::int64_t delivered_ = 0;
};

}  // namespace delta::net
