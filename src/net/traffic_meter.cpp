#include "net/traffic_meter.h"

#include <sstream>

#include "util/check.h"
#include "util/format.h"

namespace delta::net {

void TrafficMeter::record(Mechanism mechanism, Bytes bytes) {
  DELTA_CHECK(bytes.count() >= 0);
  const auto i = static_cast<std::size_t>(mechanism);
  totals_[i] += bytes;
  ++counts_[i];
}

Bytes TrafficMeter::total(Mechanism mechanism) const {
  return totals_[static_cast<std::size_t>(mechanism)];
}

Bytes TrafficMeter::figure_total() const {
  return totals_[0] + totals_[1] + totals_[2];
}

std::int64_t TrafficMeter::message_count(Mechanism mechanism) const {
  return counts_[static_cast<std::size_t>(mechanism)];
}

void TrafficMeter::reset() {
  totals_ = {};
  counts_ = {};
}

std::string TrafficMeter::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kMechanismCount; ++i) {
    if (i > 0) os << ", ";
    os << to_string(static_cast<Mechanism>(i)) << "="
       << util::human_bytes(totals_[i]) << " (" << counts_[i] << " msgs)";
  }
  os << ", figure_total=" << util::human_bytes(figure_total());
  return os.str();
}

}  // namespace delta::net
