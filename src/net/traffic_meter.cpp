#include "net/traffic_meter.h"

#include <sstream>

#include "util/check.h"
#include "util/format.h"

namespace delta::net {

// Relaxed ordering throughout: the counters are pure accumulators with no
// inter-variable invariants to publish; cross-thread visibility at read
// time is provided by the engine's join/merge barrier. record() lives in
// the header (hot path).

TrafficMeter::TrafficMeter(const TrafficMeter& other) { *this = other; }

TrafficMeter& TrafficMeter::operator=(const TrafficMeter& other) {
  for (std::size_t i = 0; i < kMechanismCount; ++i) {
    totals_[i].store(other.totals_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  return *this;
}

std::int64_t TrafficMeter::message_count(Mechanism mechanism) const {
  return counts_[static_cast<std::size_t>(mechanism)].load(
      std::memory_order_relaxed);
}

void TrafficMeter::reset() {
  for (std::size_t i = 0; i < kMechanismCount; ++i) {
    totals_[i].store(0, std::memory_order_relaxed);
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::string TrafficMeter::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kMechanismCount; ++i) {
    if (i > 0) os << ", ";
    os << to_string(static_cast<Mechanism>(i)) << "="
       << util::human_bytes(total(static_cast<Mechanism>(i))) << " ("
       << message_count(static_cast<Mechanism>(i)) << " msgs)";
  }
  os << ", figure_total=" << util::human_bytes(figure_total());
  return os.str();
}

}  // namespace delta::net
